"""Phase engine tests: phase-priority directory service (DESIGN.md s11)."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.common.params import ProtocolConfig, phase_protocol
from repro.common.types import MESIState
from repro.protocol.phase import (
    PHASE_PRIVATE,
    PHASE_READ_SHARED,
    PHASE_WRITE_SHARED,
    PhaseEngine,
)
from tests.protocol.test_engine import BASE, LINE, share_page, small_arch

LINE_NO = BASE // LINE


def make_phase_engine(verify: bool = True) -> PhaseEngine:
    return PhaseEngine(small_arch(), phase_protocol(), verify=verify)


class TestPhaseTransitions:
    def test_single_core_stays_private(self):
        engine = make_phase_engine()
        share_page(engine)
        for i in range(4):
            engine.access(0, i % 2 == 0, BASE, 100.0 * (i + 1))
        assert engine.line_phase(LINE_NO) == PHASE_PRIVATE
        assert engine.phase_promotions == 0

    def test_cross_core_read_promotes_to_read_shared(self):
        engine = make_phase_engine()
        share_page(engine)
        engine.access(0, False, BASE, 100.0)
        engine.access(1, False, BASE, 200.0)
        assert engine.line_phase(LINE_NO) == PHASE_READ_SHARED
        # Read-shared lines still earn private copies (line grants).
        assert engine.l1_state(1, LINE_NO) is MESIState.SHARED

    def test_cross_core_write_promotes_to_write_shared(self):
        engine = make_phase_engine()
        share_page(engine)
        engine.access(0, True, BASE, 100.0)
        result = engine.access(1, True, BASE, 200.0)
        assert engine.line_phase(LINE_NO) == PHASE_WRITE_SHARED
        assert result.remote  # serviced as a word access at the home
        assert engine.l1_state(1, LINE_NO) is MESIState.INVALID
        assert engine.phase_word_accesses == 1

    def test_write_shared_line_serves_reads_remotely_too(self):
        engine = make_phase_engine()
        share_page(engine)
        engine.access(0, True, BASE, 100.0)
        engine.access(1, True, BASE, 200.0)
        result = engine.access(2, False, BASE, 300.0)
        assert result.remote
        assert engine.l1_state(2, LINE_NO) is MESIState.INVALID
        engine.check_final_state()

    def test_epoch_decay_demotes_one_level_per_epoch(self):
        engine = make_phase_engine()
        share_page(engine)
        engine.access(0, True, BASE, 100.0)
        engine.access(1, True, BASE, 200.0)
        assert engine.line_phase(LINE_NO) == PHASE_WRITE_SHARED
        # One full epoch of releases (num_cores boundaries) ...
        hook = engine.sync_boundary_hook()
        for i in range(engine.arch.num_cores):
            hook(i % engine.arch.num_cores, 300.0 + i)
        # ... decays lazily on the next touch: WRITE_SHARED -> READ_SHARED.
        engine.access(1, False, BASE, 500.0)
        assert engine.line_phase(LINE_NO) == PHASE_READ_SHARED
        assert engine.phase_demotions == 1

    def test_two_epochs_decay_to_private(self):
        engine = make_phase_engine()
        share_page(engine)
        engine.access(0, True, BASE, 100.0)
        engine.access(1, True, BASE, 200.0)
        hook = engine.sync_boundary_hook()
        for i in range(2 * engine.arch.num_cores):
            hook(i % engine.arch.num_cores, 300.0 + i)
        engine.access(1, False, BASE, 900.0)
        assert engine.line_phase(LINE_NO) == PHASE_PRIVATE
        # The next access fills a private copy again.
        engine.access(1, False, BASE, 1000.0)
        assert engine.l1_state(1, LINE_NO) is not MESIState.INVALID

    def test_same_core_write_streak_never_promotes(self):
        engine = make_phase_engine()
        share_page(engine)
        for i in range(3):
            engine.access(4, True, BASE, 100.0 * (i + 1))
        assert engine.line_phase(LINE_NO) == PHASE_PRIVATE


class TestVerifiedData:
    def test_write_shared_roundtrip_under_golden(self):
        engine = make_phase_engine()
        share_page(engine)
        engine.access(0, True, BASE, 100.0)
        engine.access(1, True, BASE + 8, 200.0)  # promote, disjoint word
        engine.access(2, False, BASE, 300.0)  # golden-checked remote read
        engine.access(3, False, BASE + 8, 400.0)
        engine.check_final_state()

    def test_upgrade_while_write_shared_folds_the_copy(self):
        # A core holding an S copy upgrades after the line went
        # write-shared: its copy must fold back and the write be serviced
        # at the home (no stale private M copy may survive).
        engine = make_phase_engine()
        share_page(engine)
        engine.access(0, False, BASE, 100.0)
        engine.access(1, False, BASE, 200.0)  # both hold S copies
        engine.access(2, True, BASE + 8, 300.0)  # promotes to WRITE_SHARED
        result = engine.access(0, True, BASE, 400.0)  # upgrade attempt
        assert result.remote
        assert engine.l1_state(0, LINE_NO) is MESIState.INVALID
        engine.check_final_state()


class TestConfig:
    def test_factory_pins_the_family_knobs(self):
        cfg = phase_protocol()
        assert cfg.protocol == "phase"
        assert cfg.pct == 1
        assert cfg.directory == "ackwise"

    def test_directory_stays_selectable(self):
        assert phase_protocol(directory="fullmap").directory == "fullmap"

    def test_directoryless_rejected(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(protocol="phase", directory="none")

    def test_round_trip(self):
        cfg = phase_protocol()
        assert ProtocolConfig.from_dict(cfg.to_dict()) == cfg


class TestStatsExport:
    def test_counters_reach_run_stats(self):
        from repro.sim.stats import RunStats

        engine = make_phase_engine()
        share_page(engine)
        engine.access(0, True, BASE, 100.0)
        engine.access(1, True, BASE, 200.0)
        stats = RunStats()
        engine.export_stats(stats)
        assert stats.phase_promotions == engine.phase_promotions > 0
        assert stats.phase_word_accesses == engine.phase_word_accesses > 0

    def test_reset_stats_zeroes_phase_counters(self):
        engine = make_phase_engine()
        share_page(engine)
        engine.access(0, True, BASE, 100.0)
        engine.access(1, True, BASE, 200.0)
        assert engine.phase_promotions > 0
        engine.reset_stats()
        assert engine.phase_promotions == 0
        assert engine.phase_word_accesses == 0
