"""Protocol engine tests: MESI flows, word service, promotion/demotion."""

import pytest

from repro.common.params import ArchConfig, CacheGeometry, ProtocolConfig, baseline_protocol
from repro.common.types import MESIState, MissType
from repro.protocol.engine import ProtocolEngine

WORD = 8
LINE = 64
BASE = 1 << 30  # comfortably above address 0


def small_arch() -> ArchConfig:
    """16 cores with tiny caches so evictions are easy to provoke."""
    return ArchConfig(
        num_cores=16,
        num_memory_controllers=4,
        l1i=CacheGeometry(1, 2, 1),
        l1d=CacheGeometry(1, 2, 1),  # 16 lines, 8 sets
        l2=CacheGeometry(4, 4, 7),  # 64 lines per slice
    )


def make_engine(proto=None, verify=True):
    return ProtocolEngine(small_arch(), proto or baseline_protocol(), verify=verify)


def share_page(engine, now=0.0):
    """Touch BASE's page from two cores so R-NUCA classifies it shared.

    Multi-core scenarios need this: the first cross-core touch of a private
    page flushes the old owner's slice (invalidating its L1 copies), which
    would otherwise obscure the coherence behaviour under test.
    """
    engine.access(14, False, BASE + 62 * LINE, now)
    engine.access(15, False, BASE + 63 * LINE, now + 1.0)


class TestHitsAndMisses:
    def test_first_access_is_cold_miss(self):
        engine = make_engine()
        result = engine.access(0, False, BASE, 0.0)
        assert not result.hit
        assert result.miss_type is MissType.COLD
        assert result.latency > 0

    def test_second_access_hits(self):
        engine = make_engine()
        engine.access(0, False, BASE, 0.0)
        result = engine.access(0, False, BASE, 100.0)
        assert result.hit
        assert engine.miss_stats.hits == 1

    def test_read_grants_exclusive_to_sole_sharer(self):
        engine = make_engine()
        engine.access(0, False, BASE, 0.0)
        assert engine.l1_state(0, BASE // LINE) is MESIState.EXCLUSIVE

    def test_second_reader_downgrades_to_shared(self):
        engine = make_engine()
        share_page(engine)
        engine.access(0, False, BASE, 100.0)
        engine.access(1, False, BASE, 500.0)
        line = BASE // LINE
        assert engine.l1_state(0, line) is MESIState.SHARED
        assert engine.l1_state(1, line) is MESIState.SHARED
        entry = engine.directory_entry(line)
        assert entry.sharers == {0, 1}
        assert entry.owner == -1

    def test_write_grants_modified(self):
        engine = make_engine()
        engine.access(0, True, BASE, 0.0)
        line = BASE // LINE
        assert engine.l1_state(0, line) is MESIState.MODIFIED
        assert engine.directory_entry(line).owner == 0

    def test_silent_e_to_m_upgrade(self):
        engine = make_engine()
        engine.access(0, False, BASE, 0.0)  # E
        result = engine.access(0, True, BASE, 100.0)
        assert result.hit  # no directory involvement
        assert engine.l1_state(0, BASE // LINE) is MESIState.MODIFIED

    def test_write_invalidates_readers(self):
        engine = make_engine()
        engine.access(0, False, BASE, 0.0)
        engine.access(1, False, BASE, 500.0)
        result = engine.access(2, True, BASE, 1000.0)
        line = BASE // LINE
        assert engine.l1_state(0, line) is MESIState.INVALID
        assert engine.l1_state(1, line) is MESIState.INVALID
        assert engine.l1_state(2, line) is MESIState.MODIFIED
        assert result.l2_sharers > 0  # invalidation round-trips were paid
        assert engine.inval_histogram.total == 2

    def test_upgrade_miss_classified(self):
        engine = make_engine()
        share_page(engine)
        engine.access(0, False, BASE, 100.0)
        engine.access(1, False, BASE, 500.0)  # both S now
        result = engine.access(0, True, BASE, 1000.0)
        assert result.miss_type is MissType.UPGRADE
        assert engine.l1_state(0, BASE // LINE) is MESIState.MODIFIED
        assert engine.l1_state(1, BASE // LINE) is MESIState.INVALID

    def test_sharing_miss_after_invalidation(self):
        engine = make_engine()
        engine.access(0, False, BASE, 0.0)
        engine.access(1, True, BASE, 500.0)  # invalidates core 0
        result = engine.access(0, False, BASE, 1000.0)
        assert result.miss_type is MissType.SHARING

    def test_capacity_miss_after_eviction(self):
        engine = make_engine()
        # Three lines mapping to the same L1 set (8 sets) force an eviction.
        engine.access(0, False, BASE, 0.0)
        engine.access(0, False, BASE + 8 * LINE, 100.0)
        engine.access(0, False, BASE + 16 * LINE, 200.0)
        result = engine.access(0, False, BASE, 300.0)
        assert result.miss_type is MissType.CAPACITY

    def test_modified_data_flows_to_reader(self):
        engine = make_engine()
        share_page(engine)
        # Pick a writer that is NOT the home tile, so the synchronous
        # write-back round-trip actually crosses the network.
        home = engine.placement.shared_home(BASE // LINE)
        writer = (home + 1) % 16
        reader = (home + 2) % 16
        engine.access(writer, True, BASE, 100.0)  # M in writer
        result = engine.access(reader, False, BASE, 500.0)
        assert result.l2_sharers > 0  # synchronous write-back
        # verify mode checks the value internally; reaching here means the
        # write-back propagated correctly.
        assert engine.l1_state(writer, BASE // LINE) is MESIState.SHARED


class TestAdaptiveProtocol:
    def adaptive(self, **kwargs):
        base = dict(pct=4, classifier="complete", remote_policy="rat")
        base.update(kwargs)
        return ProtocolConfig(**base)

    def test_demotion_then_word_service(self):
        engine = make_engine(self.adaptive())
        # Fill set 0 beyond capacity with single-use lines -> demotions.
        for i in range(4):
            engine.access(0, False, BASE + i * 8 * LINE, i * 100.0)
        # Lines BASE and BASE+8*LINE were evicted with utilization 1.
        assert engine.classifier.demotions >= 1
        result = engine.access(0, False, BASE, 1000.0)
        assert result.remote
        assert result.miss_type in (MissType.CAPACITY, MissType.WORD)
        assert engine.classifier.remote_accesses == 1
        # No L1 copy was allocated.
        assert engine.l1_state(0, BASE // LINE) is MESIState.INVALID

    def test_word_miss_classification_on_repeat(self):
        engine = make_engine(self.adaptive())
        for i in range(4):
            engine.access(0, False, BASE + i * 8 * LINE, i * 100.0)
        engine.access(0, False, BASE, 1000.0)
        result = engine.access(0, False, BASE, 1100.0)
        assert result.miss_type is MissType.WORD

    def test_remote_write_stored_at_l2(self):
        engine = make_engine(self.adaptive())
        for i in range(4):
            engine.access(0, True, BASE + i * 8 * LINE, i * 100.0)
        result = engine.access(0, True, BASE, 1000.0)
        assert result.remote
        # A later private read by another core must see the written word.
        engine.access(1, False, BASE, 2000.0)  # verify mode checks the value

    def test_promotion_after_enough_remote_accesses(self):
        engine = make_engine(self.adaptive())
        for i in range(4):
            engine.access(0, False, BASE + i * 8 * LINE, i * 100.0)
        # Demoted via eviction -> RAT threshold raised to 16, but the L1 set
        # has invalid ways in other sets... keep accessing: the short-cut
        # (invalid way + utilization >= PCT) or RATmax promotes eventually.
        for i in range(20):
            engine.access(0, False, BASE, 2000.0 + i * 50)
        assert engine.classifier.promotions >= 1
        assert engine.l1_state(0, BASE // LINE).is_valid

    def test_baseline_never_remote(self):
        engine = make_engine(baseline_protocol())
        for i in range(6):
            engine.access(0, False, BASE + i * 8 * LINE, i * 100.0)
            engine.access(0, False, BASE, 50.0 + i * 100.0)
        assert engine.classifier is None
        assert engine.miss_stats.count(MissType.WORD) == 0


class TestEnergyAccounting:
    def test_remote_word_cheaper_traffic_than_line(self):
        adaptive = ProtocolConfig(pct=4, classifier="complete")
        engine_a = make_engine(adaptive, verify=False)
        engine_b = make_engine(baseline_protocol(), verify=False)
        for engine in (engine_a, engine_b):
            for i in range(4):
                engine.access(0, False, BASE + i * 8 * LINE, i * 100.0)
            for i in range(6):
                engine.access(0, False, BASE, 1000.0 + i * 100)
        # The adaptive engine served the repeats as word accesses instead of
        # refilling (and re-evicting) full lines.
        assert engine_a.energy.l2_word_reads > 0
        assert engine_a.energy.l1d_line_fills < engine_b.energy.l1d_line_fills

    def test_counters_populated(self):
        engine = make_engine()
        engine.access(0, True, BASE, 0.0)
        energy = engine.energy
        assert energy.l2_tag_accesses >= 1
        assert energy.directory_lookups >= 1
        assert energy.l1d_line_fills == 1
        assert engine.network.flits_sent > 0


class TestStatsReset:
    def test_reset_keeps_state_clears_counters(self):
        engine = make_engine()
        engine.access(0, False, BASE, 0.0)
        engine.reset_stats()
        assert engine.miss_stats.accesses == 0
        assert engine.network.flits_sent == 0
        # The line is still cached: next access is a hit.
        assert engine.access(0, False, BASE, 100.0).hit
