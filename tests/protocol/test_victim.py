"""Victim Replication tests (Section 2.1 comparison point).

Scenario conventions follow ``test_engine.py``: a tiny 16-core system so
evictions are easy to provoke, ``share_page`` to pin R-NUCA's page
classification, and verify mode on so golden-memory checks run.  Acting
cores are chosen away from the shared line's home slice, because a victim
whose home is the local slice is (correctly) never replicated.
"""

from __future__ import annotations

import pytest

from repro.common.errors import CoherenceError
from repro.common.params import victim_replication_protocol
from repro.common.types import MESIState
from repro.protocol.victim import VictimReplicationEngine
from tests.protocol.test_engine import BASE, LINE, share_page, small_arch


def make_vr_engine(verify: bool = True) -> VictimReplicationEngine:
    return VictimReplicationEngine(small_arch(), victim_replication_protocol(), verify=verify)


def evict_line(engine, core: int, line_addr: int, start: float) -> float:
    """Evict ``line_addr`` from ``core``'s L1 by filling its 2-way set.

    The tiny L1 has 8 sets; lines that are 8 lines apart map to the same
    set.  Returns the next free timestamp.
    """
    t = start
    for i in (1, 2):
        engine.access(core, False, line_addr + i * 8 * LINE, t)
        t += 200.0
    return t


def setup_shared_line(engine) -> tuple[int, int]:
    """Make BASE's page shared and return two cores that are NOT its home.

    Replication only happens when the victim's home is a *remote* slice, so
    the acting cores must differ from wherever R-NUCA hashed the line.
    """
    share_page(engine)
    home = engine.placement.shared_home(BASE // LINE)
    cores = [c for c in range(12) if c != home]
    return cores[0], cores[1]


class TestReplicaCreation:
    def test_shared_eviction_creates_local_replica(self):
        engine = make_vr_engine()
        a, b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        engine.access(b, False, BASE, 300.0)  # both S now
        evict_line(engine, a, BASE, 500.0)
        assert engine.replicas_created >= 1
        replica = engine.l2[a].lookup(BASE // LINE)
        assert replica is not None and replica.is_replica

    def test_shared_eviction_with_replica_sends_no_message(self):
        engine = make_vr_engine()
        a, b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        engine.access(b, False, BASE, 300.0)
        t = 500.0
        # Bring the first filler line in, and warm the second one's home L2
        # (two other cores read it, so it sits in S with no owner): the
        # final access is then exactly one request + one line reply.
        others = [x for x in range(12) if x not in (a, b)][:2]
        engine.access(a, False, BASE + 8 * LINE, t)
        engine.access(others[0], False, BASE + 16 * LINE, t + 100.0)
        engine.access(others[1], False, BASE + 16 * LINE, t + 200.0)
        messages_before = engine.network.messages_sent
        engine.access(a, False, BASE + 16 * LINE, t + 400.0)
        # The final access costs one request + one reply; the silent S
        # replication of the displaced BASE line adds nothing.
        assert engine.network.messages_sent - messages_before <= 2
        replica = engine.l2[a].lookup(BASE // LINE)
        assert replica is not None and replica.is_replica

    def test_replica_holder_stays_in_sharer_set(self):
        engine = make_vr_engine()
        a, b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        engine.access(b, False, BASE, 300.0)
        evict_line(engine, a, BASE, 500.0)
        assert a in engine.directory_entry(BASE // LINE).sharers

    def test_no_replica_when_home_slice_is_local(self):
        # R-NUCA places a private page at the requester's own slice: a
        # replica would duplicate the local home line.
        engine = make_vr_engine()
        engine.access(0, False, BASE, 0.0)  # private page, home = slice 0
        evict_line(engine, 0, BASE, 100.0)
        assert engine.replicas_created == 0

    def test_modified_eviction_writes_back_and_replicates_clean(self):
        engine = make_vr_engine()
        a, _b = setup_shared_line(engine)
        engine.access(a, True, BASE, 100.0)
        home = engine._home_of_line[BASE // LINE]
        evict_line(engine, a, BASE, 300.0)
        assert engine.replicas_created >= 1
        homeline = engine.l2[home].lookup(BASE // LINE)
        assert homeline.dirty  # data went home
        assert engine.directory_entry(BASE // LINE).owner == -1

    def test_exclusive_eviction_clears_owner_but_keeps_sharer(self):
        engine = make_vr_engine()
        a, _b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        assert engine.directory_entry(BASE // LINE).owner == a
        evict_line(engine, a, BASE, 300.0)
        entry = engine.directory_entry(BASE // LINE)
        assert entry.owner == -1
        assert a in entry.sharers


class TestReplicaHits:
    def test_read_after_eviction_hits_replica_without_network(self):
        engine = make_vr_engine()
        a, b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        engine.access(b, False, BASE, 300.0)
        evict_line(engine, a, BASE, 500.0)
        flits_before = engine.network.flits_sent
        result = engine.access(a, False, BASE, 2000.0)
        assert engine.replica_hits == 1
        # The hit itself is traffic-free; the L1 fill may displace another
        # line whose eviction notice is one header flit.  A home round-trip
        # would have cost a request plus a 9-flit line reply.
        assert engine.network.flits_sent - flits_before <= 1
        assert not result.hit  # still an L1 miss, just a cheap one
        assert result.latency == engine.arch.l2.latency

    def test_replica_promotes_back_into_l1(self):
        engine = make_vr_engine()
        a, b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        engine.access(b, False, BASE, 300.0)
        evict_line(engine, a, BASE, 500.0)
        engine.access(a, False, BASE, 2000.0)
        assert engine.l1_state(a, BASE // LINE) is MESIState.SHARED
        assert engine.l2[a].lookup(BASE // LINE) is None  # replica freed

    def test_replica_hit_is_cheaper_than_home_roundtrip(self):
        engine = make_vr_engine()
        a, b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        engine.access(b, False, BASE, 300.0)
        evict_line(engine, a, BASE, 500.0)
        hit = engine.access(a, False, BASE, 2000.0)
        # Same access pattern without a replica: line 3 sets away, fresh
        # from its (remote) home slice.
        fresh = engine.access(a, False, BASE + 3 * LINE, 3000.0)
        assert hit.latency <= fresh.latency

    def test_replica_hit_counts_as_l1_miss(self):
        engine = make_vr_engine()
        a, b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        engine.access(b, False, BASE, 300.0)
        evict_line(engine, a, BASE, 500.0)
        misses_before = engine.miss_stats.misses
        engine.access(a, False, BASE, 2000.0)
        assert engine.miss_stats.misses == misses_before + 1


class TestCoherence:
    def test_remote_write_invalidates_replica(self):
        engine = make_vr_engine()
        a, b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        engine.access(b, False, BASE, 300.0)
        evict_line(engine, a, BASE, 500.0)
        engine.access(b, True, BASE, 2000.0)  # exclusive request
        assert engine.replica_invalidations == 1
        assert engine.l2[a].lookup(BASE // LINE) is None
        assert engine.directory_entry(BASE // LINE).sharers == {b}

    def test_own_write_discards_own_replica(self):
        engine = make_vr_engine()
        a, b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        engine.access(b, False, BASE, 300.0)
        evict_line(engine, a, BASE, 500.0)
        engine.access(a, True, BASE, 2000.0)
        replica = engine.l2[a].lookup(BASE // LINE)
        assert replica is None or not replica.is_replica
        assert engine.l1_state(a, BASE // LINE) is MESIState.MODIFIED

    def test_functional_correctness_with_replicas(self):
        # Golden-memory checks stay green across replicate/hit/invalidate.
        engine = make_vr_engine(verify=True)
        a, b = setup_shared_line(engine)
        engine.access(a, True, BASE, 100.0)  # core a writes
        evict_line(engine, a, BASE, 300.0)  # dirty eviction -> clean replica
        engine.access(a, False, BASE, 2000.0)  # replica hit, checked vs golden
        engine.access(b, True, BASE, 3000.0)  # remote write kills the L1 copy
        engine.access(a, False, BASE, 4000.0)  # fresh copy, checked again

    def test_directory_invariants_hold(self):
        engine = make_vr_engine()
        a, b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        engine.access(b, False, BASE, 300.0)
        evict_line(engine, a, BASE, 500.0)
        engine.access(b, True, BASE, 2000.0)
        engine.directory_entry(BASE // LINE).check_invariants()

    def test_purge_without_copy_or_replica_raises(self):
        engine = make_vr_engine()
        a, _b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        l2line = engine.l2[engine._home_of_line[BASE // LINE]].lookup(BASE // LINE)
        engine.l1d[a].remove(BASE // LINE)  # corrupt: drop the copy silently
        with pytest.raises(CoherenceError, match="neither an L1 copy nor a replica"):
            engine._purge_target_copy(a, BASE // LINE, l2line, merge_into_l2=True)


class TestReplacementAndFallback:
    def test_replication_failure_falls_back_to_plain_eviction(self):
        engine = make_vr_engine()
        a, b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        engine.access(b, False, BASE, 300.0)
        evict_line(engine, a, BASE, 500.0)
        # Whatever happened, the directory stays coherent and the counters
        # are consistent: every eviction either replicated or fell back.
        engine.directory_entry(BASE // LINE).check_invariants()
        assert engine.replicas_created + engine.replication_failures >= 1

    def test_replica_drop_releases_home_sharer_slot(self):
        engine = make_vr_engine()
        a, b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        engine.access(b, False, BASE, 300.0)
        evict_line(engine, a, BASE, 500.0)
        replica = engine.l2[a].lookup(BASE // LINE)
        assert replica is not None and replica.is_replica
        engine._drop_replica(a, BASE // LINE, replica, 1000.0)
        assert a not in engine.directory_entry(BASE // LINE).sharers
        assert engine.replica_evictions == 1

    def test_drop_replica_of_unknown_home_raises(self):
        engine = make_vr_engine()
        from repro.mem.l2 import L2Line

        orphan = L2Line()
        orphan.is_replica = True
        with pytest.raises(CoherenceError, match="unknown home"):
            engine._drop_replica(0, 0xDEAD, orphan, 0.0)


class TestStatsPlumbing:
    def test_simulator_surfaces_replica_counters(self):
        from repro.experiments.harness import bench_arch
        from repro.sim.multicore import Simulator
        from repro.workloads.registry import load_workload

        arch = bench_arch()
        trace = load_workload("dijkstra-ap", arch, scale="tiny")
        stats = Simulator(arch, victim_replication_protocol()).run(trace)
        assert stats.replicas_created >= 0
        assert stats.replica_hits >= 0

    def test_reset_stats_zeroes_replica_counters(self):
        engine = make_vr_engine()
        a, b = setup_shared_line(engine)
        engine.access(a, False, BASE, 100.0)
        engine.access(b, False, BASE, 300.0)
        evict_line(engine, a, BASE, 500.0)
        assert engine.replicas_created > 0
        engine.reset_stats()
        assert engine.replicas_created == 0
        assert engine.replica_hits == 0


class TestEvictionCornerCases:
    """The thinnest-tested engine path: replica replacement under pressure.

    L2 geometry is 4KB/4-way (16 sets), so lines 16 apart share an L2 set;
    they are also 8 apart in L1 terms, so they share the 2-way L1 set too -
    a stride-16-line stream self-evicts from the L1 and funnels every
    victim into ONE set of the local slice, which is exactly the capacity
    churn the original VR replacement rules arbitrate.
    """

    STRIDE = 16 * LINE  # same L2 set (and same L1 set) as BASE

    def _share_pages_of(self, engine, addrs, start=0.0):
        """Pin every page containing ``addrs`` as R-NUCA-shared up front."""
        page_size = engine.arch.page_size
        t = start
        for page_start in sorted({a - a % page_size for a in addrs}):
            engine.access(14, False, page_start + 62 * LINE, t)
            engine.access(15, False, page_start + 63 * LINE, t + 1.0)
            t += 10.0
        return t

    def _off_home_core(self, engine, lines):
        """A core that is not the home slice of any of ``lines``."""
        homes = {engine.placement.shared_home(ln // LINE) for ln in lines}
        return next(c for c in range(12) if c not in homes)

    def test_replica_hit_after_l1_writeback(self):
        """A MODIFIED victim writes back home and re-reads from the replica.

        The corner: the replica must be *clean* yet hold the written data,
        so the replica hit serves the write's value without touching the
        home (golden checks run on every read).
        """
        engine = make_vr_engine(verify=True)
        t = self._share_pages_of(engine, [BASE])
        home = engine.placement.shared_home(BASE // LINE)
        a = next(c for c in range(12) if c != home)
        engine.access(a, True, BASE, t)  # M copy with a fresh token
        engine.access(a, True, BASE + 8, t + 50.0)  # second word dirtied
        evict_line(engine, a, BASE, t + 100.0)  # dirty writeback + replica
        replica = engine.l2[a].lookup(BASE // LINE)
        assert replica is not None and replica.is_replica
        assert not replica.dirty  # data went home; the replica is clean
        homeline = engine.l2[home].lookup(BASE // LINE)
        assert homeline.dirty
        hits_before = engine.replica_hits
        engine.access(a, False, BASE, t + 2000.0)  # golden-checked word 0
        assert engine.replica_hits == hits_before + 1
        engine.access(a, False, BASE + 8, t + 2100.0)  # word 1 via fresh L1 hit
        engine.check_final_state()

    def test_capacity_churn_drops_lru_replicas(self):
        """More victims than ways: the LRU replica yields its slot (and its
        home sharer bit) to the newcomer."""
        engine = make_vr_engine(verify=True)
        addrs = [BASE + k * self.STRIDE for k in range(8)]
        t = self._share_pages_of(engine, addrs)
        a = self._off_home_core(engine, addrs)
        for i, addr in enumerate(addrs):
            engine.access(a, False, addr, t + 100.0 * i)
        # 8 same-set lines through a 2-way L1: 6 evictions, all replicated
        # into the single 4-way local L2 set -> at least 2 LRU replicas died.
        assert engine.replicas_created == 6
        assert engine.replica_evictions >= 2
        resident = [
            ln for ln, e in engine.l2[a].store.entries_in_set(BASE // LINE) if e.is_replica
        ]
        assert len(resident) <= 4
        # Dropped replicas released their sharer slots at their homes.
        for addr in addrs:
            line = addr // LINE
            entry = engine.directory_entry(line)
            in_l1 = engine.l1d[a].lookup(line) is not None
            is_replica = line in resident
            assert (a in entry.sharers) == (in_l1 or is_replica)
            entry.check_invariants()
        # Churn never corrupted data: survivors still serve correct words.
        surviving = [addr for addr in addrs if addr // LINE in resident]
        assert surviving  # the MRU victims must have survived
        hits_before = engine.replica_hits
        engine.access(a, False, surviving[-1], t + 5000.0)
        assert engine.replica_hits == hits_before + 1
        engine.check_final_state()

    def test_l2_fill_displaces_replica_before_active_home_line(self):
        """An incoming home line claims a replica's way via the L2 victim
        path (``_evict_l2_line`` on a replica -> ``_drop_replica``)."""
        engine = make_vr_engine(verify=True)
        addrs = [BASE + k * self.STRIDE for k in range(8)]
        t = self._share_pages_of(engine, addrs)
        a = self._off_home_core(engine, addrs)
        for i, addr in enumerate(addrs):
            engine.access(a, False, addr, t + 100.0 * i)
        drops_before = engine.replica_evictions
        # A *private* page of core ``a`` homes at slice ``a``; pick a line
        # mapping into the replica-filled set 0 (line number = 0 mod 16).
        # Its L2 fill must claim a replica's way (never an active home
        # line); the L1 fill may ripple one more victim into the set.
        private = 2 * BASE + (a * 64 + 0) * self.STRIDE
        engine.access(a, False, private, t + 5000.0)
        assert engine.replica_evictions > drops_before
        assert engine.l2[a].lookup(private // LINE) is not None
        engine.check_final_state()

    def test_no_replication_when_set_full_of_active_home_lines(self):
        """``_make_room_for_replica`` must refuse to displace live sharers."""
        engine = make_vr_engine()
        home = engine.placement.shared_home(BASE // LINE)
        a = next(c for c in range(12) if c != home)
        # Stuff set 0 of ``a``'s slice with four ACTIVE home lines: shared
        # lines that hash to home ``a``, each kept alive in a *different*
        # core's L1 (one core could hold at most two - every L2-set-0 line
        # also maps to L1 set 0).
        keepers = [c for c in range(12) if c != a][:4]
        pinned = []
        candidate = (2 * BASE) // LINE
        while len(pinned) < 4:
            if engine.placement.shared_home(candidate) == a:
                pinned.append(candidate * LINE)
            candidate += 16  # stay in L2 set 0
        t = self._share_pages_of(engine, pinned + [BASE])
        for keeper, addr in zip(keepers, pinned):
            engine.access(keeper, False, addr, t)
            t += 50.0
        set0 = engine.l2[a].store.entries_in_set(BASE // LINE)
        assert len(set0) == 4 and all(e.directory.sharers for _, e in set0)
        failures_before = engine.replication_failures
        engine.access(a, False, BASE, t + 1000.0)
        evict_line(engine, a, BASE, t + 2000.0)  # victim cannot replicate
        assert engine.replication_failures == failures_before + 1
        assert engine.l2[a].lookup(BASE // LINE) is None
        assert a not in engine.directory_entry(BASE // LINE).sharers


class TestCounterHygiene:
    def test_reset_stats_zeroes_replication_failures(self):
        engine = make_vr_engine()
        engine.replication_failures = 7
        engine.reset_stats()
        assert engine.replication_failures == 0

    def test_export_stats_does_not_mutate_engine_counters(self):
        from repro.sim.stats import RunStats

        engine = make_vr_engine()
        engine.replicas_created = 3
        engine.replication_failures = 5
        stats = RunStats()
        engine.export_stats(stats)
        assert stats.replicas_created == 3
        assert engine.replication_failures == 5  # export is read-only
