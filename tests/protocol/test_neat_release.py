"""Neat release-boundary self-downgrade batching (``neat_downgrade="release"``).

The published Neat defers downgrade flushes to release boundaries instead of
writing every store through eagerly.  These tests pin the defining contract:
around a lock handoff, N buffered stores to one line cost ONE downgrade
message (the batched flush at the unlock), where the eager model pays N -
and the reader on the other side of the handoff still observes every store
(golden-memory verified).
"""

from __future__ import annotations

import pytest

from repro.common.params import ArchConfig, neat_protocol
from repro.sim.multicore import Simulator
from repro.workloads.base import TraceBuilder

ARCH = ArchConfig(num_cores=16, num_memory_controllers=4)
STORES = 6  # stores inside the critical section


def lock_handoff_trace(stores: int = STORES, lines: int = 1):
    """Core 0 writes ``stores`` words under a lock; core 1 reads them after
    acquiring the same lock - a classic data-race-free handoff."""
    builder = TraceBuilder("neat-handoff", num_cores=16)
    base = builder.address_space.alloc("shared", 4096)
    writer, reader = builder.thread(0), builder.thread(1)
    writer.lock(1)
    for i in range(stores):
        writer.write(base + 64 * (i % lines) + 8 * (i % 8))
    writer.unlock(1)
    reader.work(5)
    reader.lock(1)
    for i in range(stores):
        reader.read(base + 64 * (i % lines) + 8 * (i % 8))
    reader.unlock(1)
    builder.barrier_all()
    return builder.build()


def run(downgrade: str, trace=None, verify: bool = True):
    sim = Simulator(ARCH, neat_protocol(downgrade=downgrade), verify=verify)
    return sim.run(trace if trace is not None else lock_handoff_trace())


class TestDowngradeMessageBatching:
    def test_eager_pays_one_downgrade_per_store(self):
        stats = run("eager")
        assert stats.write_throughs == STORES

    def test_release_batches_one_downgrade_per_line_per_release(self):
        # All stores hit one line inside one critical section: exactly one
        # batched flush message at the unlock.
        stats = run("release")
        assert stats.write_throughs == 1

    def test_release_flushes_per_dirty_line(self):
        # Two distinct lines dirtied in the critical section: two flushes,
        # still independent of the store count.
        trace = lock_handoff_trace(stores=STORES, lines=2)
        stats = run("release", trace=trace)
        assert stats.write_throughs == 2

    def test_handoff_reader_sees_buffered_stores(self):
        # verify=True golden-checks every read the reader performs after
        # the handoff; a lost or stale buffered store aborts the run.
        stats = run("release")
        assert stats.completion_time > 0

    def test_release_mode_reduces_network_messages(self):
        eager = run("eager", verify=False)
        release = run("release", verify=False)
        assert release.network_flits < eager.network_flits or (
            release.write_throughs < eager.write_throughs
        )


class TestReleaseModeSafetyFlushes:
    def test_end_of_trace_is_a_final_release(self):
        # Stores with no unlock/barrier afterwards: the end-of-trace flush
        # must still publish them (check_final_state would fail otherwise).
        builder = TraceBuilder("neat-tail", num_cores=16)
        base = builder.address_space.alloc("shared", 256)
        t0 = builder.thread(0)
        t0.write(base)
        t0.write(base + 8)
        stats = Simulator(ARCH, neat_protocol(downgrade="release"), verify=True).run(
            builder.build()
        )
        assert stats.write_throughs == 1  # one line, one batched flush

    def test_eviction_flushes_buffered_words(self):
        # Dirty a line, then sweep enough lines through the same L1 set to
        # evict it before any release: the buffered store must be flushed by
        # the eviction, not lost (verify mode re-reads it afterwards).
        builder = TraceBuilder("neat-evict", num_cores=16)
        arch = ARCH
        sets = arch.l1d.num_sets
        ways = arch.l1d.associativity
        base = builder.address_space.alloc("shared", 64 * sets * (ways + 2))
        t0 = builder.thread(0)
        t0.write(base)
        for way in range(1, ways + 2):  # same set, distinct lines
            t0.read(base + 64 * sets * way)
        t0.read(base)  # reload the flushed line and golden-check it
        builder.barrier_all()
        stats = Simulator(arch, neat_protocol(downgrade="release"), verify=True).run(
            builder.build()
        )
        assert stats.write_throughs >= 1


class TestReleaseFlushStaleCopy:
    """Regression tests for bugs found by the ``repro.verify.exhaustive`` tier.

    Minimized trace (found automatically, 5 ops): core 0 and core 1 buffer
    stores to disjoint words of ONE line; both release.  The core whose flush
    lands SECOND holds a copy fetched before the first core's flush - its
    non-pending words are stale.  ``_flush_line`` used to revalidate that
    copy to the new line version unconditionally, so the second core's next
    read of the first core's word served pre-flush data.
    """

    LINE = 3

    @staticmethod
    def _engine():
        from repro.common.params import CacheGeometry
        from repro.protocol.engine import make_engine

        arch = ArchConfig(
            num_cores=4,
            num_memory_controllers=2,
            l1d=CacheGeometry(1, 1, 1),
            l2=CacheGeometry(2, 2, 7),
        )
        return make_engine(arch, neat_protocol(downgrade="release"), verify=True)

    def _addr(self, word: int) -> int:
        from repro.common import addr as addrmod

        return (self.LINE << addrmod.LINE_BITS) | (word << addrmod.WORD_BITS)

    def test_second_flusher_copy_stays_stale(self):
        # W0(w0); W1(w4); release0; release1; R1(w0).  Verify mode golden-
        # checks the final read: a wrongly revalidated copy on core 1 serves
        # the pre-flush value of word 0 and aborts with a CoherenceError.
        engine = self._engine()
        hook = engine.sync_boundary_hook()
        assert hook is not None
        t = 0.0
        engine.access(0, True, self._addr(0), t)
        engine.access(1, True, self._addr(4), t + 1)
        hook(0, t + 2)  # core 0 flushes first: line version bumps
        hook(1, t + 3)  # core 1 flushes word 4; its copy must STAY stale
        engine.access(1, False, self._addr(0), t + 4)  # must see core 0's store
        engine.check_final_state()

    def test_first_flusher_copy_stays_fresh(self):
        # The flushing core's copy IS the flushed image when it was fresh at
        # flush time: core 0's re-read after its own flush is a plain hit.
        engine = self._engine()
        hook = engine.sync_boundary_hook()
        engine.access(0, True, self._addr(0), 0.0)
        hook(0, 1.0)
        misses_after_flush = engine.miss_stats.misses
        engine.access(0, False, self._addr(0), 2.0)
        assert engine.miss_stats.misses == misses_after_flush
        engine.check_final_state()

    def test_eviction_then_release_single_flush(self):
        # Satellite audit: an eviction-triggered early flush empties the
        # pending set, so the release batch at the next boundary must not
        # emit a second WB_DATA for the line nor bump its version again.
        engine = self._engine()
        hook = engine.sync_boundary_hook()
        other = self.LINE + 16  # same direct-mapped L1 set (16 sets at 1KB)
        from repro.common import addr as addrmod

        engine.access(0, True, self._addr(0), 0.0)
        engine.access(0, False, other << addrmod.LINE_BITS, 1.0)  # evicts LINE
        assert engine.write_throughs == 1  # eviction flushed the buffer
        assert engine._line_version.get(self.LINE, 0) == 1
        hook(0, 2.0)  # release batch: nothing pending for LINE
        assert engine.write_throughs == 1
        assert engine._line_version.get(self.LINE, 0) == 1
        engine.check_final_state()


class TestConfigNormalization:
    def test_release_knob_is_neat_only(self):
        from repro.common.params import ProtocolConfig

        cfg = ProtocolConfig(protocol="baseline", pct=1, neat_downgrade="release")
        assert cfg.neat_downgrade == "eager"  # normalized: inert elsewhere

    def test_unknown_downgrade_rejected(self):
        from repro.common.errors import ConfigError
        from repro.common.params import ProtocolConfig

        with pytest.raises(ConfigError, match="neat_downgrade"):
            ProtocolConfig(protocol="neat", directory="none", neat_downgrade="lazy")

    def test_round_trip_preserves_release(self):
        cfg = neat_protocol(downgrade="release")
        from repro.common.params import ProtocolConfig

        assert ProtocolConfig.from_dict(cfg.to_dict()) == cfg
