"""Tests for the technology-node scaling rules."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.energy.technology import (
    NODE_11NM,
    NODE_45NM,
    NODES,
    TechnologyNode,
    node,
)


class TestNodeLookup:
    def test_builtin_ladder_has_paper_node(self):
        assert node(11).feature_nm == 11.0

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigError, match="unknown technology node"):
            node(7)

    def test_ladder_voltages_decrease_with_feature_size(self):
        ordered = [NODES[nm] for nm in sorted(NODES, reverse=True)]
        vdds = [n.vdd for n in ordered]
        assert vdds == sorted(vdds, reverse=True)


class TestScalingRules:
    def test_gate_energy_shrinks_with_node(self):
        assert NODE_11NM.gate_energy_pj < NODE_45NM.gate_energy_pj

    def test_gate_energy_shrinks_monotonically_down_the_ladder(self):
        ordered = [NODES[nm] for nm in sorted(NODES, reverse=True)]
        energies = [n.gate_energy_pj for n in ordered]
        assert energies == sorted(energies, reverse=True)

    def test_wire_energy_shrinks_only_via_voltage(self):
        # Wire energy ratio across nodes equals the vdd-squared ratio.
        ratio = NODE_11NM.wire_energy_pj_per_mm / NODE_45NM.wire_energy_pj_per_mm
        assert ratio == pytest.approx((NODE_11NM.vdd / NODE_45NM.vdd) ** 2)

    def test_wire_to_gate_ratio_grows_as_node_shrinks(self):
        # Section 5.1.1: wires scale poorly, so their relative cost grows.
        ordered = [NODES[nm] for nm in sorted(NODES, reverse=True)]
        ratios = [n.wire_to_gate_ratio for n in ordered]
        assert ratios == sorted(ratios)

    def test_gate_energy_at_reference_node_is_the_reference_constant(self):
        from repro.energy.technology import GATE_ENERGY_PJ_45

        assert NODE_45NM.gate_energy_pj == pytest.approx(GATE_ENERGY_PJ_45)


class TestValidation:
    def test_nonpositive_feature_rejected(self):
        with pytest.raises(ConfigError, match="feature size"):
            TechnologyNode(0, 1.0)

    def test_implausible_voltage_rejected(self):
        with pytest.raises(ConfigError, match="voltage"):
            TechnologyNode(22, 5.0)
