"""Tests for the McPAT-flavoured analytical cache energy backend.

These verify the *structural* properties the paper's results depend on, not
exact joule values: the word-addressable L2 makes a word access ~4x cheaper
than a line access, L1 accesses are cheaper than L2 accesses, and directory
energy is small (Section 4.2 / 5.1.1).
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.common.params import ArchConfig, CacheGeometry, EnergyConfig
from repro.energy.mcpat import (
    CacheEnergyModel,
    DirectoryEnergyModel,
    derive_energy_config,
)
from repro.energy.technology import NODE_11NM, NODE_45NM

L1D = CacheGeometry(32, 4, 1)
L2 = CacheGeometry(256, 8, 7)


class TestCacheEnergyModel:
    def test_line_access_several_times_word_access(self):
        l2 = CacheEnergyModel(L2, NODE_11NM)
        ratio = l2.line_read() / l2.word_read()
        assert 2.5 <= ratio <= 6.0  # paper's word-addressable L2: ~4x

    def test_l1_word_cheaper_than_l2_word(self):
        l1 = CacheEnergyModel(L1D, NODE_11NM)
        l2 = CacheEnergyModel(L2, NODE_11NM)
        assert l1.word_read() < l2.word_read()

    def test_writes_cost_more_than_reads(self):
        m = CacheEnergyModel(L2, NODE_11NM)
        assert m.word_write() > m.word_read()
        assert m.line_write() > m.line_read()

    def test_tag_probe_cheaper_than_word_read(self):
        m = CacheEnergyModel(L2, NODE_11NM)
        assert m.tag_access() < m.word_read()

    def test_bigger_cache_costs_more_per_access(self):
        small = CacheEnergyModel(CacheGeometry(16, 4, 1), NODE_11NM)
        big = CacheEnergyModel(CacheGeometry(256, 4, 7), NODE_11NM)
        assert big.word_read() > small.word_read()
        assert big.line_read() > small.line_read()

    def test_newer_node_is_cheaper(self):
        new = CacheEnergyModel(L2, NODE_11NM)
        old = CacheEnergyModel(L2, NODE_45NM)
        assert new.word_read() < old.word_read()
        assert new.line_read() < old.line_read()

    def test_explicit_tag_bits_accepted(self):
        m = CacheEnergyModel(L2, NODE_11NM, tag_bits=20)
        assert m.tag_bits == 20

    def test_nonpositive_tag_bits_rejected(self):
        with pytest.raises(ConfigError, match="tag bits"):
            CacheEnergyModel(L2, NODE_11NM, tag_bits=0)

    def test_nonpositive_bits_read_rejected(self):
        m = CacheEnergyModel(L2, NODE_11NM)
        with pytest.raises(ConfigError, match="bits read"):
            m.data_array.read(0)

    def test_nonpositive_bits_written_rejected(self):
        m = CacheEnergyModel(L2, NODE_11NM)
        with pytest.raises(ConfigError, match="bits written"):
            m.data_array.write(-8)

    @given(
        size_kb=st.sampled_from([4, 8, 16, 32, 64, 128, 256, 512]),
        assoc=st.sampled_from([1, 2, 4, 8]),
    )
    def test_property_all_event_energies_positive(self, size_kb, assoc):
        geometry = CacheGeometry(size_kb, assoc, 1)
        m = CacheEnergyModel(geometry, NODE_11NM)
        for value in (
            m.word_read(),
            m.word_write(),
            m.line_read(),
            m.line_write(),
            m.tag_access(),
        ):
            assert value > 0

    @given(bits=st.integers(min_value=1, max_value=4096))
    def test_property_energy_monotone_in_bits(self, bits):
        array = CacheEnergyModel(L2, NODE_11NM).data_array
        assert array.read(bits + 1) > array.read(bits)
        assert array.write(bits + 1) > array.write(bits)


class TestDirectoryEnergyModel:
    def test_lookup_much_cheaper_than_line_access(self):
        # Section 5.1.1: directory energy is negligible.
        directory = DirectoryEnergyModel(L2, entry_bits=60, tech=NODE_11NM)
        l2 = CacheEnergyModel(L2, NODE_11NM)
        assert directory.lookup() < 0.25 * l2.line_read()

    def test_update_costs_more_than_lookup(self):
        directory = DirectoryEnergyModel(L2, entry_bits=60, tech=NODE_11NM)
        assert directory.update() > directory.lookup()

    def test_wider_entry_costs_more(self):
        limited = DirectoryEnergyModel(L2, entry_bits=60, tech=NODE_11NM)
        complete = DirectoryEnergyModel(L2, entry_bits=408, tech=NODE_11NM)
        assert complete.lookup() > limited.lookup()

    def test_nonpositive_entry_bits_rejected(self):
        with pytest.raises(ConfigError, match="entry bits"):
            DirectoryEnergyModel(L2, entry_bits=0)


class TestDeriveEnergyConfig:
    def test_returns_valid_config(self):
        cfg = derive_energy_config(ArchConfig(), NODE_11NM)
        assert isinstance(cfg, EnergyConfig)

    def test_derivation_lands_near_calibrated_l2_defaults(self):
        # The calibrated defaults were chosen to match the 11 nm derivation
        # of the Table-1 L2 slice; check they still agree within 15%.
        cfg = derive_energy_config(ArchConfig(), NODE_11NM)
        defaults = EnergyConfig()
        assert cfg.l2_word_read == pytest.approx(defaults.l2_word_read, rel=0.15)
        assert cfg.l2_line_read == pytest.approx(defaults.l2_line_read, rel=0.15)
        assert cfg.router_per_flit == pytest.approx(defaults.router_per_flit, rel=0.15)
        assert cfg.link_per_flit == pytest.approx(defaults.link_per_flit, rel=0.15)

    def test_preserves_paper_orderings(self):
        cfg = derive_energy_config(ArchConfig(), NODE_11NM)
        assert cfg.link_per_flit > cfg.router_per_flit
        assert cfg.l2_line_read > 2.5 * cfg.l2_word_read
        assert cfg.l1d_read < cfg.l2_word_read
        assert cfg.directory_lookup < cfg.l2_line_read / 4

    def test_older_node_uniformly_more_expensive(self):
        new = derive_energy_config(ArchConfig(), NODE_11NM)
        old = derive_energy_config(ArchConfig(), NODE_45NM)
        import dataclasses

        for f in dataclasses.fields(EnergyConfig):
            assert getattr(old, f.name) > getattr(new, f.name)
