"""Tests for the DSENT-flavoured router/link energy backend."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.common.params import ArchConfig
from repro.energy.dsent import (
    LinkEnergyModel,
    RouterEnergyModel,
    crossover_node,
    link_energy_per_flit,
    router_energy_per_flit,
)
from repro.energy.technology import NODE_11NM, NODE_45NM, NODES


class TestRouterEnergyModel:
    def test_components_sum_to_per_flit(self):
        r = RouterEnergyModel(64, NODE_11NM)
        total = r.buffer_energy + r.crossbar_energy + r.arbiter_energy + r.clock_energy
        assert r.per_flit == pytest.approx(total)

    def test_wider_flit_costs_more(self):
        assert RouterEnergyModel(128, NODE_11NM).per_flit > RouterEnergyModel(64, NODE_11NM).per_flit

    def test_higher_radix_costs_more(self):
        mesh = RouterEnergyModel(64, NODE_11NM, radix=5)
        torus = RouterEnergyModel(64, NODE_11NM, radix=7)
        assert torus.per_flit > mesh.per_flit

    def test_newer_node_is_cheaper(self):
        assert RouterEnergyModel(64, NODE_11NM).per_flit < RouterEnergyModel(64, NODE_45NM).per_flit

    def test_invalid_flit_width_rejected(self):
        with pytest.raises(ConfigError, match="flit width"):
            RouterEnergyModel(0, NODE_11NM)

    def test_invalid_radix_rejected(self):
        with pytest.raises(ConfigError, match="radix"):
            RouterEnergyModel(64, NODE_11NM, radix=1)


class TestLinkEnergyModel:
    def test_energy_linear_in_span(self):
        short = LinkEnergyModel(64, NODE_11NM, span_mm=1.0)
        long = LinkEnergyModel(64, NODE_11NM, span_mm=2.0)
        assert long.per_flit == pytest.approx(2.0 * short.per_flit)

    def test_energy_linear_in_flit_width(self):
        narrow = LinkEnergyModel(64, NODE_11NM)
        wide = LinkEnergyModel(128, NODE_11NM)
        assert wide.per_flit == pytest.approx(2.0 * narrow.per_flit)

    def test_invalid_span_rejected(self):
        with pytest.raises(ConfigError, match="span"):
            LinkEnergyModel(64, NODE_11NM, span_mm=0.0)

    def test_invalid_flit_width_rejected(self):
        with pytest.raises(ConfigError, match="flit width"):
            LinkEnergyModel(-1, NODE_11NM)


class TestWireScalingStory:
    """Section 5.1.1: link energy overtakes router energy by 11 nm."""

    def test_links_beat_routers_at_11nm(self):
        arch = ArchConfig()
        assert link_energy_per_flit(arch, NODE_11NM) > router_energy_per_flit(arch, NODE_11NM)

    def test_routers_beat_links_at_45nm(self):
        arch = ArchConfig()
        assert router_energy_per_flit(arch, NODE_45NM) > link_energy_per_flit(arch, NODE_45NM)

    def test_crossover_happens_inside_the_ladder(self):
        ladder = [NODES[nm] for nm in sorted(NODES, reverse=True)]
        node = crossover_node(ArchConfig(), ladder)
        assert node is not None
        assert node.feature_nm < 45.0

    def test_crossover_none_when_no_node_qualifies(self):
        assert crossover_node(ArchConfig(), [NODES[45.0]]) is None

    def test_link_to_router_ratio_grows_down_the_ladder(self):
        arch = ArchConfig()
        ordered = [NODES[nm] for nm in sorted(NODES, reverse=True)]
        ratios = [
            link_energy_per_flit(arch, n) / router_energy_per_flit(arch, n) for n in ordered
        ]
        assert ratios == sorted(ratios)

    @given(flit_bits=st.sampled_from([32, 64, 128, 256]))
    def test_property_crossover_independent_of_flit_width(self, flit_bits):
        # Both router and link scale linearly in flit bits (to first order),
        # so the 11nm ordering should hold for any width.
        r = RouterEnergyModel(flit_bits, NODE_11NM).per_flit
        l = LinkEnergyModel(flit_bits, NODE_11NM).per_flit
        assert l > 0.8 * r  # links never become negligible at 11 nm
