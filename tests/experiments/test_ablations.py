"""Ablation-generator tests at tiny scale (fast versions of the benches)."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    ackwise_pointer_sweep,
    core_count_scaling,
    link_model_ablation,
    vote_init_ablation,
)
from repro.experiments.harness import ExperimentRunner, bench_arch


@pytest.fixture(scope="module")
def tiny_runner():
    return ExperimentRunner(
        arch=bench_arch(16), scale="tiny", workloads=("streamcluster", "radix")
    )


class TestLinkModelAblation:
    def test_epoch_is_the_normalization_anchor(self, tiny_runner):
        result = link_model_ablation(tiny_runner, workloads=("streamcluster",))
        assert result.data["streamcluster"]["epoch"] == pytest.approx(1.0)

    def test_contention_models_ordered(self, tiny_runner):
        result = link_model_ablation(tiny_runner, workloads=("streamcluster",))
        row = result.data["streamcluster"]
        assert row["none"] <= row["epoch"] + 1e-9
        assert row["naive"] >= row["epoch"] - 1e-9

    def test_text_contains_all_models(self, tiny_runner):
        result = link_model_ablation(tiny_runner, workloads=("streamcluster",))
        for model in ("none", "epoch", "naive"):
            assert model in result.text


class TestAckwisePointerSweep:
    def test_broadcast_fraction_monotone_in_pointers(self, tiny_runner):
        result = ackwise_pointer_sweep(
            tiny_runner, pointers=(1, 4), workloads=("streamcluster",)
        )
        per_p = result.data["streamcluster"]
        assert per_p[1]["broadcast_fraction"] >= per_p[4]["broadcast_fraction"]

    def test_normalized_to_p4(self, tiny_runner):
        result = ackwise_pointer_sweep(
            tiny_runner, pointers=(1, 4), workloads=("streamcluster",)
        )
        assert result.data["streamcluster"][4]["time_norm"] == pytest.approx(1.0)


class TestCoreCountScaling:
    def test_single_point_runs(self):
        result = core_count_scaling(
            core_counts=(16,), workloads=("streamcluster",), scale="tiny"
        )
        t, e = result.data["streamcluster"][16]
        assert t > 0 and e > 0


class TestVoteInitAblation:
    def test_ratios_positive_and_reported(self, tiny_runner):
        result = vote_init_ablation(tiny_runner, workloads=("streamcluster", "radix"))
        t, e = result.data["geomean"]
        assert t > 0 and e > 0
        assert "geomean" in result.text
