"""Tests for the ``repro-trace`` command-line tool."""

from __future__ import annotations

import pytest

from repro.experiments.tracecli import main
from repro.workloads.tracefile import load_trace, save_trace_text, trace_equal


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "hand.trace"
    path.write_text(
        "#trace hand cores=2 version=1\n"
        "T0 R 0x40000000\n"
        "T0 W 0x40000040 3\n"
        "T1 R 0x40000000\n"
        "T1 K 10\n"
    )
    return path


class TestGenerate:
    def test_generates_binary_trace(self, tmp_path, capsys):
        out = tmp_path / "dfs.traceb"
        assert main(["generate", "dfs", str(out), "--scale", "tiny"]) == 0
        assert out.exists()
        trace = load_trace(out)
        assert trace.name == "dfs"
        assert "records" in capsys.readouterr().out

    def test_unknown_workload_rejected_by_argparse(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "not-a-workload", str(tmp_path / "x.traceb")])


class TestStatsAndDump:
    def test_stats_reports_counts(self, trace_file, capsys):
        assert main(["stats", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "'hand'" in out
        assert "reads" in out and "writes" in out

    def test_dump_shows_records_and_truncates(self, trace_file, capsys):
        assert main(["dump", str(trace_file), "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "thread 0" in out and "more" in out

    def test_missing_file_reports_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.trace")]) == 1
        assert "error:" in capsys.readouterr().err


class TestConvert:
    def test_text_to_binary_and_back(self, trace_file, tmp_path, capsys):
        binary = tmp_path / "hand.traceb"
        text2 = tmp_path / "hand2.trace"
        assert main(["convert", str(trace_file), str(binary)]) == 0
        assert main(["convert", str(binary), str(text2)]) == 0
        assert trace_equal(load_trace(trace_file), load_trace(text2))

    def test_malformed_source_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace"
        bad.write_text("not a trace\n")
        assert main(["convert", str(bad), str(tmp_path / "out.traceb")]) == 1
        assert "error:" in capsys.readouterr().err


class TestRun:
    def test_runs_generated_trace_under_both_protocols(self, tmp_path, capsys):
        from repro.experiments.harness import bench_arch
        from repro.workloads.registry import load_workload

        trace = load_workload("matmul", bench_arch(), scale="tiny")
        path = tmp_path / "m.trace"
        save_trace_text(trace, path)
        assert main(["run", str(path), "--no-warmup"]) == 0
        baseline_out = capsys.readouterr().out
        assert "baseline" in baseline_out
        assert main(["run", str(path), "--pct", "4", "--no-warmup"]) == 0
        assert "adaptive pct=4" in capsys.readouterr().out

    def test_core_count_mismatch_reports_error(self, trace_file, capsys):
        # The hand trace has 2 cores; the default arch wants 64.
        assert main(["run", str(trace_file), "--no-warmup"]) == 1
        assert "error:" in capsys.readouterr().err
