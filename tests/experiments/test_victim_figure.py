"""Tests for the Victim Replication comparison figure generator."""

from __future__ import annotations

import pytest

from repro.experiments.figures import victim_replication_comparison
from repro.experiments.harness import ExperimentRunner, bench_arch


@pytest.fixture(scope="module")
def tiny_runner():
    return ExperimentRunner(
        arch=bench_arch(16), scale="tiny", workloads=("dijkstra-ap", "streamcluster")
    )


class TestVictimReplicationFigure:
    def test_rows_normalized_to_baseline(self, tiny_runner):
        result = victim_replication_comparison(tiny_runner)
        for name in tiny_runner.workloads:
            row = result.data[name]
            assert row["vr_time"] > 0 and row["vr_energy"] > 0
            assert row["adapt_time"] > 0 and row["adapt_energy"] > 0

    def test_replica_counters_reported(self, tiny_runner):
        result = victim_replication_comparison(tiny_runner)
        for name in tiny_runner.workloads:
            assert result.data[name]["replicas"] >= 0
            assert result.data[name]["replica_hits"] >= 0

    def test_geomean_summary_present(self, tiny_runner):
        result = victim_replication_comparison(tiny_runner)
        summary = result.data["geomean"]
        assert set(summary) == {"vr_time", "vr_energy", "adapt_time", "adapt_energy"}

    def test_text_renders_all_workloads(self, tiny_runner):
        result = victim_replication_comparison(tiny_runner)
        for name in tiny_runner.workloads:
            assert name in result.text
        assert "geomean" in result.text
