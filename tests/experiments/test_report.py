"""Tests for the EXPERIMENTS.md generator."""

from __future__ import annotations

import pathlib

from repro.experiments.report import EXPERIMENTS, generate, missing_results


class TestExperimentIndex:
    def test_every_paper_figure_is_covered(self):
        ids = {e.exp_id for e in EXPERIMENTS}
        for figure in ("Figure 1", "Figure 2", "Figure 8", "Figure 9",
                       "Figure 10", "Figure 11", "Figure 12", "Figure 13",
                       "Figure 14"):
            assert figure in ids

    def test_storage_and_preamble_covered(self):
        ids = {e.exp_id for e in EXPERIMENTS}
        assert "Section 3.6 (storage)" in ids
        assert "Section 5 preamble" in ids

    def test_every_experiment_names_an_existing_bench(self):
        root = pathlib.Path(__file__).resolve().parents[2]
        for e in EXPERIMENTS:
            assert (root / e.bench).exists(), e.bench

    def test_result_files_unique(self):
        files = [e.result_file for e in EXPERIMENTS]
        assert len(files) == len(set(files))


class TestGeneration:
    def test_renders_archived_results(self, tmp_path):
        (tmp_path / "fig11_geomean_sweep.txt").write_text("MEASURED TABLE 42\n")
        text = generate(results_dir=tmp_path)
        assert "MEASURED TABLE 42" in text
        assert "paper vs measured" in text.lower()

    def test_marks_missing_results(self, tmp_path):
        text = generate(results_dir=tmp_path)
        assert "no archived result yet" in text

    def test_index_table_lists_all_experiments(self, tmp_path):
        text = generate(results_dir=tmp_path)
        for e in EXPERIMENTS:
            assert e.exp_id in text

    def test_missing_results_accounts_for_archives(self):
        # Against the real results dir: whatever is missing must be a
        # subset of the declared experiments.
        declared = {e.result_file for e in EXPERIMENTS}
        assert set(missing_results()) <= declared
