"""Experiment harness, storage arithmetic and figure-generator tests."""

import pytest

from repro.common.params import ArchConfig, ProtocolConfig
from repro.experiments.harness import (
    ExperimentRunner,
    adaptive_protocol,
    bench_arch,
    protocol_for_pct,
)
from repro.experiments.figures import (
    FIGURES,
    ackwise_vs_fullmap,
    figure1_invalidations,
    figure11_geomean_sweep,
    figure14_one_way,
)
from repro.experiments.storage import storage_report, storage_table, utilization_counter_bits


class TestStorageArithmetic:
    """Every number of Section 3.6 must reproduce exactly."""

    def test_l1_utilization_bits(self):
        assert utilization_counter_bits(4) == 2
        report = storage_report()
        assert report.l1_utilization_bytes == pytest.approx(0.19 * 1024, rel=0.02)

    def test_limited3_is_18kb(self):
        report = storage_report(ArchConfig(), ProtocolConfig(classifier="limited", limited_k=3))
        assert report.classifier_bits_per_entry == 36
        assert report.classifier_kb == pytest.approx(18.0)

    def test_complete_is_192kb(self):
        report = storage_report(ArchConfig(), ProtocolConfig(classifier="complete"))
        assert report.classifier_bits_per_entry == 384
        assert report.classifier_kb == pytest.approx(192.0)

    def test_ackwise4_is_12kb(self):
        report = storage_report()
        assert report.sharer_bits_per_entry == 24
        assert report.sharer_kb == pytest.approx(12.0)

    def test_fullmap_is_32kb(self):
        assert storage_report().fullmap_kb == pytest.approx(32.0)

    def test_limited3_plus_ackwise_beats_fullmap(self):
        assert storage_report().beats_fullmap()

    def test_overhead_percentages(self):
        limited = storage_report(ArchConfig(), ProtocolConfig(classifier="limited"))
        complete = storage_report(ArchConfig(), ProtocolConfig(classifier="complete"))
        assert limited.overhead_fraction == pytest.approx(0.057, abs=0.005)
        assert complete.overhead_fraction == pytest.approx(0.60, abs=0.02)

    def test_table_renders(self):
        text = storage_table()
        assert "18.00 KB" in text
        assert "192.00 KB" in text


class TestHarness:
    def test_bench_arch_scaled_caches(self):
        arch = bench_arch()
        assert arch.num_cores == 64
        assert arch.l1d.size_kb == 8
        assert arch.l2.size_kb == 64
        assert arch.ackwise_pointers == 4  # Table 1 unchanged

    def test_protocol_for_pct_one_is_baseline(self):
        assert protocol_for_pct(1).protocol == "baseline"
        assert protocol_for_pct(4).protocol == "adaptive"
        assert protocol_for_pct(4).pct == 4

    def test_adaptive_protocol_defaults(self):
        proto = adaptive_protocol()
        assert proto.pct == 4 and proto.limited_k == 3 and proto.rat_max == 16

    def test_runner_memoizes(self):
        runner = ExperimentRunner(
            arch=bench_arch(16), scale="tiny", workloads=("water-sp",)
        )
        first = runner.run("water-sp", protocol_for_pct(1))
        again = runner.run("water-sp", protocol_for_pct(1))
        assert first is again
        assert runner.cached_runs == 1


@pytest.fixture(scope="module")
def tiny_runner():
    return ExperimentRunner(
        arch=bench_arch(16), scale="tiny", workloads=("streamcluster", "water-sp")
    )


class TestFigureGenerators:
    def test_registry_covers_all_figures(self):
        assert set(FIGURES) == {
            "1", "2", "8", "9", "10", "11", "12", "13", "14",
            "ackwise-vs-fullmap", "victim-replication", "protocol-families",
        }

    def test_figure1_structure(self, tiny_runner):
        result = figure1_invalidations(tiny_runner)
        assert "streamcluster" in result.data
        buckets = result.data["streamcluster"]
        assert sum(buckets.values()) == pytest.approx(100.0, abs=0.1)

    def test_figure11_normalized_to_one(self, tiny_runner):
        result = figure11_geomean_sweep(tiny_runner, pcts=(1, 2, 4))
        series = result.data["series"]
        assert series[1] == (pytest.approx(1.0), pytest.approx(1.0))
        assert all(t > 0 and e > 0 for t, e in series.values())

    def test_figure14_ratios_positive(self, tiny_runner):
        result = figure14_one_way(tiny_runner)
        assert all(r > 0 for pair in result.data.values() for r in pair)

    def test_ackwise_close_to_fullmap(self, tiny_runner):
        result = ackwise_vs_fullmap(tiny_runner)
        t, e = result.data["geomean"]
        # The paper reports parity within 1%; allow a little slack at tiny scale.
        assert t == pytest.approx(1.0, abs=0.05)
        assert e == pytest.approx(1.0, abs=0.05)


class TestProtocolFamiliesFigure:
    def test_six_way_comparison_structure(self, tiny_runner):
        from repro.experiments.figures import protocol_families_comparison

        result = protocol_families_comparison(tiny_runner)
        labels = {"baseline", "victim", "dls", "neat", "phase", "adaptive"}
        for workload in tiny_runner.workloads:
            row = result.data[workload]
            assert set(row) == labels
            # Normalization anchor: the baseline column is exactly 1.
            assert row["baseline"] == (1.0, 1.0)
            for tr, er in row.values():
                assert tr > 0 and er > 0
        geo = result.data["geomean"]
        assert set(geo) == labels
        assert geo["baseline"] == (1.0, 1.0)
        assert "T(dls)" in result.text and "E(neat)" in result.text
