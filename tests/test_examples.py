"""Repository hygiene for the examples/ directory.

Examples are documentation that must not rot: each one needs a module
docstring with run instructions, a ``main()`` entry point behind the
standard guard, and imports that resolve against the installed package.
(Full executions live in the examples themselves; they take minutes.)
"""

from __future__ import annotations

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def example_ids():
    return [p.name for p in EXAMPLE_FILES]


class TestExamplesHygiene:
    def test_example_directory_is_substantial(self):
        assert len(EXAMPLE_FILES) >= 3  # deliverable: at least three

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=example_ids())
    def test_has_run_instructions_in_docstring(self, path):
        tree = ast.parse(path.read_text())
        doc = ast.get_docstring(tree)
        assert doc, f"{path.name} lacks a module docstring"
        assert f"python examples/{path.name}" in doc, (
            f"{path.name} docstring lacks run instructions"
        )

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=example_ids())
    def test_has_main_behind_guard(self, path):
        tree = ast.parse(path.read_text())
        names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in names, f"{path.name} lacks a main() function"
        guards = [
            n for n in tree.body
            if isinstance(n, ast.If) and isinstance(n.test, ast.Compare)
        ]
        assert guards, f"{path.name} lacks the __main__ guard"

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=example_ids())
    def test_imports_resolve(self, path):
        import importlib

        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            modules = []
            if isinstance(node, ast.Import):
                modules = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                modules = [node.module]
            for module in modules:
                if module.split(".")[0] in ("repro",):
                    importlib.import_module(module)
