"""Scheduler-kernel equivalence and seam tests (DESIGN.md section 14).

The compiled ``SchedKernel`` owns the record walk, the min-clock heap and
the L1-hit fast path natively, exiting to Python only on cold events
(misses, barriers, locks).  Its single contract is **bit-identical**
``RunStats`` against the pure-Python loop - these tests pin that contract
where the kernel's deferred state is most at risk:

* sync-heavy traces (tsp locks, radix barriers) across all four
  mesh x sched on/off combinations,
* protocol families without a scheduler fast path (dls), where every
  access exits to Python yet the cursor/heap walk stays native,
* verify mode, whose final-state sweep reads the caches the kernel's
  flush must have reconciled,
* the per-kernel fault gate (``accel.build_fail`` with ``kernel="sched"``
  forces *only* the scheduler fallback),
* observer detach: caches never retain a membership hook after a run.
"""

from __future__ import annotations

import pytest

from repro import accel
from repro.accel import build
from repro.common.params import (
    ArchConfig,
    baseline_protocol,
    dls_protocol,
    neat_protocol,
)
from repro.faults import FAULTS, FaultRule, FaultSchedule
from repro.mem.cache import SetAssocCache
from repro.sim.multicore import Simulator
from repro.workloads.registry import load_workload

pytestmark = pytest.mark.skipif(
    build.find_compiler() is None, reason="no C compiler on this host"
)

ARCH = ArchConfig(num_cores=16, num_memory_controllers=4)

#: (mesh_disabled, sched_disabled) - all four kernel combinations.
COMBOS = [(False, False), (True, False), (False, True), (True, True)]


@pytest.fixture(autouse=True)
def clean_selection(monkeypatch):
    for env in (build.NO_ACCEL_ENV, accel.NO_ACCEL_MESH_ENV,
                accel.NO_ACCEL_SCHED_ENV):
        monkeypatch.delenv(env, raising=False)
    accel.reset()
    yield
    FAULTS.deactivate()
    accel.reset()


def _run(trace, proto, monkeypatch, *, no_mesh, no_sched, verify=False):
    if no_mesh:
        monkeypatch.setenv(accel.NO_ACCEL_MESH_ENV, "1")
    else:
        monkeypatch.delenv(accel.NO_ACCEL_MESH_ENV, raising=False)
    if no_sched:
        monkeypatch.setenv(accel.NO_ACCEL_SCHED_ENV, "1")
    else:
        monkeypatch.delenv(accel.NO_ACCEL_SCHED_ENV, raising=False)
    return Simulator(ARCH, proto, warmup=True, verify=verify).run(trace)


class TestBitIdentity:
    @pytest.mark.parametrize("workload", ["tsp", "radix"])
    def test_sync_heavy_identical_across_combos(self, workload, monkeypatch):
        """tsp is lock-heavy, radix barrier-heavy: every Python exit path
        (advance, continue_at, wake) is on the line here."""
        trace = load_workload(workload, ARCH, scale="tiny")
        runs = [
            _run(trace, baseline_protocol(), monkeypatch,
                 no_mesh=m, no_sched=s).to_dict()
            for m, s in COMBOS
        ]
        assert all(r == runs[0] for r in runs[1:])

    def test_no_fast_path_family_identical(self, monkeypatch):
        """dls publishes no scheduler fast path: the kernel still walks the
        trace natively but calls ``access`` for every memory record."""
        trace = load_workload("radix", ARCH, scale="tiny")
        on = _run(trace, dls_protocol(), monkeypatch,
                  no_mesh=False, no_sched=False)
        off = _run(trace, dls_protocol(), monkeypatch,
                   no_mesh=False, no_sched=True)
        assert on.to_dict() == off.to_dict()

    def test_verify_mode_identical(self, monkeypatch):
        """Verify mode sweeps final cache state - anything the kernel
        deferred (LRU, utilization, E->M upgrades) must have been flushed."""
        trace = load_workload("tsp", ARCH, scale="tiny")
        on = _run(trace, neat_protocol(), monkeypatch,
                  no_mesh=False, no_sched=False, verify=True)
        off = _run(trace, neat_protocol(), monkeypatch,
                   no_mesh=False, no_sched=True, verify=True)
        assert on.to_dict() == off.to_dict()


class TestSeams:
    def test_sched_fault_forces_only_sched_fallback(self):
        """A ``kernel="sched"`` site-filtered build failure must not take
        the mesh kernel down with it (chaos cell ``sched-fallback``)."""
        schedule = FaultSchedule(seed=0, rules=(
            FaultRule("accel.build_fail", times=0, args={"kernel": "sched"}),
        ))
        FAULTS.activate(schedule)
        try:
            accel.reset()
            assert accel.mesh_kernel_class() is not None
            assert accel.sched_kernel_class() is None
            status = accel.status()
            assert status["kernels"]["mesh"]["implementation"] == "accel"
            assert status["kernels"]["sched"]["implementation"] == "fallback"
            assert "fault injected" in status["kernels"]["sched"]["reason"]
        finally:
            FAULTS.deactivate()

    def test_mesh_fault_forces_only_mesh_fallback(self):
        schedule = FaultSchedule(seed=0, rules=(
            FaultRule("accel.build_fail", times=0, args={"kernel": "mesh"}),
        ))
        FAULTS.activate(schedule)
        try:
            accel.reset()
            assert accel.mesh_kernel_class() is None
            assert accel.sched_kernel_class() is not None
        finally:
            FAULTS.deactivate()

    def test_observers_detached_after_run(self, monkeypatch):
        """The kernel attaches per-store membership hooks for the duration
        of one execution only; a leaked hook would corrupt the next run's
        native map.  Track every cache built during the run."""
        live: list[SetAssocCache] = []
        orig_init = SetAssocCache.__init__

        def tracking_init(self, geometry):
            orig_init(self, geometry)
            live.append(self)

        monkeypatch.setattr(SetAssocCache, "__init__", tracking_init)
        trace = load_workload("tsp", ARCH, scale="tiny")
        Simulator(ARCH, baseline_protocol(), warmup=True).run(trace)
        assert accel.kernel_impl("sched") == "accel"
        assert live, "no caches observed"
        assert all(cache._observer is None for cache in live)

    def test_fast_hit_counters_survive_kernel_path(self, monkeypatch):
        """The deferred hit counters must land in telemetry-visible form:
        the kernel path reports the same fast-path hit totals as Python."""
        trace = load_workload("tsp", ARCH, scale="tiny")
        sim_on = Simulator(ARCH, baseline_protocol(), warmup=True)
        monkeypatch.delenv(accel.NO_ACCEL_SCHED_ENV, raising=False)
        sim_on.run(trace)
        on = (sim_on._fast_read_hits, sim_on._fast_write_hits)
        monkeypatch.setenv(accel.NO_ACCEL_SCHED_ENV, "1")
        sim_off = Simulator(ARCH, baseline_protocol(), warmup=True)
        sim_off.run(trace)
        assert on == (sim_off._fast_read_hits, sim_off._fast_write_hits)
        assert on[0] > 0
