"""Build-cache and fallback-selection tests for the compiled accelerators.

The compile-at-import machinery (``repro.accel.build``) keys its artifact
cache on the fingerprints of *every* C source (mtime + content hash), the
compiler id and the ABI tag, and every failure mode degrades to the
pure-Python implementations with one warning per kernel and *identical*
simulation results.  These tests pin:

* a fresh cache compiles once and then reuses the artifact,
* touching any kernel source (mtime) forces a recompile - including the
  second translation unit (``_sched.c``), which a single-source
  fingerprint would miss,
* ``REPRO_NO_ACCEL=1`` forces both fallbacks, and the per-kernel
  ``REPRO_NO_ACCEL_MESH``/``REPRO_NO_ACCEL_SCHED`` force exactly one,
* a missing compiler falls back with one warning per kernel and
  bit-identical ``RunStats``.

All tests point ``REPRO_ACCEL_CACHE`` at a tmp dir and copy the kernel
sources, so the user-level cache and the repo tree are never mutated.
"""

from __future__ import annotations

import json
import logging
import os
import shutil

import pytest

from repro import accel
from repro.accel import build
from repro.common.params import ArchConfig, baseline_protocol
from repro.network.mesh import MeshNetwork
from repro.sim.multicore import Simulator
from repro.workloads.registry import load_workload

pytestmark = pytest.mark.skipif(
    build.find_compiler() is None, reason="no C compiler on this host"
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every test builds into its own cache and resets the one-shot state
    (before AND after, so the rest of the suite re-selects normally)."""
    monkeypatch.setenv(build.CACHE_ENV, str(tmp_path / "cache"))
    monkeypatch.delenv(build.NO_ACCEL_ENV, raising=False)
    monkeypatch.delenv(accel.NO_ACCEL_MESH_ENV, raising=False)
    monkeypatch.delenv(accel.NO_ACCEL_SCHED_ENV, raising=False)
    accel.reset()
    yield tmp_path
    accel.reset()


@pytest.fixture
def sources_copy(tmp_path):
    """Private copies of every kernel source whose mtimes tests may touch."""
    copies = []
    for source in build.kernel_sources():
        target = tmp_path / source.name
        shutil.copy(source, target)
        copies.append(target)
    assert len(copies) >= 2, "expected both _kernel.c and _sched.c"
    return copies


class TestBuildCache:
    def test_fresh_cache_compiles_then_reuses(self, sources_copy):
        artifact, info = build.build_artifact(sources_copy)
        assert artifact is not None and artifact.exists(), info["reason"]
        assert info["rebuilt"] is True
        # The metadata sidecar records full provenance, one fingerprint
        # per source file.
        meta = json.loads(build.artifact_paths()[1].read_text())
        assert meta["compiler_id"] == info["compiler"]
        assert set(meta["sources"]) == {s.name for s in sources_copy}
        stamp = artifact.stat().st_mtime_ns

        again, info2 = build.build_artifact(sources_copy)
        assert again == artifact
        assert info2["rebuilt"] is False
        assert artifact.stat().st_mtime_ns == stamp, "stale artifact was rebuilt"

    def test_touched_source_forces_recompile(self, sources_copy):
        artifact, _ = build.build_artifact(sources_copy)
        assert artifact is not None
        # Advance the first source's mtime past the artifact's.
        future = artifact.stat().st_mtime + 60.0
        os.utime(sources_copy[0], (future, future))
        _, info = build.build_artifact(sources_copy)
        assert info["rebuilt"] is True

    def test_second_source_edit_forces_recompile(self, sources_copy):
        """Editing ``_sched.c`` (content, mtime preserved) must rebuild:
        the sidecar fingerprints every input, not just the first."""
        artifact, _ = build.build_artifact(sources_copy)
        assert artifact is not None
        sched = next(s for s in sources_copy if s.name == "_sched.c")
        stat = sched.stat()
        sched.write_text(
            sched.read_text() + "\n/* edited second translation unit */\n"
        )
        os.utime(sched, (stat.st_atime, stat.st_mtime))  # mtime-preserving
        _, info = build.build_artifact(sources_copy)
        assert info["rebuilt"] is True

    def test_compiler_swap_forces_recompile(self, sources_copy, monkeypatch):
        artifact, _ = build.build_artifact(sources_copy)
        assert artifact is not None
        monkeypatch.setattr(
            build, "compiler_id", lambda cc: f"{cc} (different banner)"
        )
        _, info = build.build_artifact(sources_copy)
        assert info["rebuilt"] is True

    def test_rebuilt_artifact_still_loads(self, sources_copy):
        artifact, info = build.build_artifact(sources_copy)
        assert artifact is not None, info["reason"]
        module = build.load_module(artifact)
        assert hasattr(module, "MeshKernel")
        assert hasattr(module, "SchedKernel")


class TestSelection:
    ARCH = ArchConfig(num_cores=16, num_memory_controllers=4)

    def test_no_accel_env_forces_fallback(self, monkeypatch):
        assert accel.mesh_kernel_class() is not None  # compiles into tmp cache
        assert accel.sched_kernel_class() is not None
        monkeypatch.setenv(build.NO_ACCEL_ENV, "1")
        assert accel.mesh_kernel_class() is None
        assert accel.sched_kernel_class() is None
        net = MeshNetwork(self.ARCH)
        assert net.implementation == "fallback"
        status = accel.status()
        assert status["implementation"] == "fallback"
        assert status["disabled_by_env"] is True
        assert build.NO_ACCEL_ENV in status["reason"]
        assert status["kernels"]["sched"]["implementation"] == "fallback"
        assert build.NO_ACCEL_ENV in status["kernels"]["sched"]["reason"]
        # The env var is re-read per construction: unset -> accel again.
        monkeypatch.delenv(build.NO_ACCEL_ENV)
        assert MeshNetwork(self.ARCH).implementation == "accel"

    def test_per_kernel_env_forces_one_fallback(self, monkeypatch):
        monkeypatch.setenv(accel.NO_ACCEL_SCHED_ENV, "1")
        assert accel.mesh_kernel_class() is not None
        assert accel.sched_kernel_class() is None
        status = accel.status()
        assert status["kernels"]["mesh"]["implementation"] == "accel"
        assert status["kernels"]["sched"]["implementation"] == "fallback"
        assert accel.NO_ACCEL_SCHED_ENV in status["kernels"]["sched"]["reason"]
        monkeypatch.delenv(accel.NO_ACCEL_SCHED_ENV)
        monkeypatch.setenv(accel.NO_ACCEL_MESH_ENV, "1")
        assert accel.mesh_kernel_class() is None
        assert accel.sched_kernel_class() is not None

    def test_missing_compiler_falls_back_with_single_warning(
        self, monkeypatch, caplog
    ):
        monkeypatch.setattr(build, "find_compiler", lambda: None)
        with caplog.at_level(logging.WARNING, logger="repro.accel"):
            assert accel.mesh_kernel_class() is None
            assert accel.mesh_kernel_class() is None  # second probe: no re-log
            assert accel.sched_kernel_class() is None
            assert accel.sched_kernel_class() is None
        warnings = [
            r for r in caplog.records if "accelerator unavailable" in r.message
        ]
        # One warning per kernel, not per probe.
        assert len(warnings) == 2
        assert all("no C compiler" in w.getMessage() for w in warnings)
        status = accel.status()
        assert status["implementation"] == "fallback"
        assert status["compiled"] is False
        assert "no C compiler" in status["reason"]
        assert status["kernels"]["sched"]["compiled"] is False

    def test_missing_compiler_runstats_identical(self, monkeypatch):
        """The fallback is not a degraded mode: a compiler-less host
        produces bit-identical RunStats to the compiled kernels."""
        trace = load_workload("tsp", self.ARCH, scale="tiny")
        with_kernel = Simulator(self.ARCH, baseline_protocol(), warmup=True).run(
            trace
        )
        assert accel.active_impl() == "accel"
        assert accel.kernel_impl("sched") == "accel"

        accel.reset()
        monkeypatch.setattr(build, "find_compiler", lambda: None)
        without = Simulator(self.ARCH, baseline_protocol(), warmup=True).run(trace)
        assert accel.active_impl() == "fallback"
        assert accel.kernel_impl("sched") == "fallback"
        assert with_kernel.to_dict() == without.to_dict()
