"""Build-cache and fallback-selection tests for the mesh accelerator.

The compile-at-import machinery (``repro.accel.build``) keys its artifact
cache on source mtime + content hash + compiler id + ABI tag, and every
failure mode degrades to the pure-Python ring buffer with a single warning
and *identical* simulation results.  These tests pin:

* a fresh cache compiles once and then reuses the artifact,
* touching the kernel source (mtime) forces a recompile,
* ``REPRO_NO_ACCEL=1`` forces the fallback without touching the cache,
* a missing compiler falls back with one warning and bit-identical
  ``RunStats``.

All tests point ``REPRO_ACCEL_CACHE`` at a tmp dir and copy the kernel
source, so the user-level cache and the repo tree are never mutated.
"""

from __future__ import annotations

import json
import logging
import os
import shutil

import pytest

from repro import accel
from repro.accel import build
from repro.common.params import ArchConfig, baseline_protocol
from repro.network.mesh import MeshNetwork
from repro.sim.multicore import Simulator
from repro.workloads.registry import load_workload

pytestmark = pytest.mark.skipif(
    build.find_compiler() is None, reason="no C compiler on this host"
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Every test builds into its own cache and resets the one-shot state
    (before AND after, so the rest of the suite re-selects normally)."""
    monkeypatch.setenv(build.CACHE_ENV, str(tmp_path / "cache"))
    monkeypatch.delenv(build.NO_ACCEL_ENV, raising=False)
    accel.reset()
    yield tmp_path
    accel.reset()


@pytest.fixture
def kernel_copy(tmp_path):
    """A private copy of ``_kernel.c`` whose mtime tests may touch."""
    source = tmp_path / "_kernel.c"
    shutil.copy(build.SOURCE, source)
    return source


class TestBuildCache:
    def test_fresh_cache_compiles_then_reuses(self, kernel_copy):
        artifact, info = build.build_artifact(kernel_copy)
        assert artifact is not None and artifact.exists(), info["reason"]
        assert info["rebuilt"] is True
        # The metadata sidecar records full provenance.
        meta = json.loads(build.artifact_paths(kernel_copy)[1].read_text())
        assert meta["compiler_id"] == info["compiler"]
        stamp = artifact.stat().st_mtime_ns

        again, info2 = build.build_artifact(kernel_copy)
        assert again == artifact
        assert info2["rebuilt"] is False
        assert artifact.stat().st_mtime_ns == stamp, "stale artifact was rebuilt"

    def test_touched_source_forces_recompile(self, kernel_copy):
        artifact, _ = build.build_artifact(kernel_copy)
        assert artifact is not None
        # Advance the source mtime past the artifact's.
        future = artifact.stat().st_mtime + 60.0
        os.utime(kernel_copy, (future, future))
        _, info = build.build_artifact(kernel_copy)
        assert info["rebuilt"] is True

    def test_compiler_swap_forces_recompile(self, kernel_copy, monkeypatch):
        artifact, _ = build.build_artifact(kernel_copy)
        assert artifact is not None
        monkeypatch.setattr(
            build, "compiler_id", lambda cc: f"{cc} (different banner)"
        )
        _, info = build.build_artifact(kernel_copy)
        assert info["rebuilt"] is True

    def test_rebuilt_artifact_still_loads(self, kernel_copy):
        artifact, info = build.build_artifact(kernel_copy)
        assert artifact is not None, info["reason"]
        module = build.load_module(artifact)
        assert hasattr(module, "MeshKernel")


class TestSelection:
    ARCH = ArchConfig(num_cores=16, num_memory_controllers=4)

    def test_no_accel_env_forces_fallback(self, monkeypatch):
        assert accel.mesh_kernel_class() is not None  # compiles into tmp cache
        monkeypatch.setenv(build.NO_ACCEL_ENV, "1")
        assert accel.mesh_kernel_class() is None
        net = MeshNetwork(self.ARCH)
        assert net.implementation == "fallback"
        status = accel.status()
        assert status["implementation"] == "fallback"
        assert status["disabled_by_env"] is True
        assert build.NO_ACCEL_ENV in status["reason"]
        # The env var is re-read per construction: unset -> accel again.
        monkeypatch.delenv(build.NO_ACCEL_ENV)
        assert MeshNetwork(self.ARCH).implementation == "accel"

    def test_missing_compiler_falls_back_with_single_warning(
        self, monkeypatch, caplog
    ):
        monkeypatch.setattr(build, "find_compiler", lambda: None)
        with caplog.at_level(logging.WARNING, logger="repro.accel"):
            assert accel.mesh_kernel_class() is None
            assert accel.mesh_kernel_class() is None  # second probe: no re-log
        warnings = [
            r for r in caplog.records if "accelerator unavailable" in r.message
        ]
        assert len(warnings) == 1
        assert "no C compiler" in warnings[0].getMessage()
        status = accel.status()
        assert status["implementation"] == "fallback"
        assert status["compiled"] is False
        assert "no C compiler" in status["reason"]

    def test_missing_compiler_runstats_identical(self, monkeypatch):
        """The fallback is not a degraded mode: a compiler-less host
        produces bit-identical RunStats to the compiled kernel."""
        trace = load_workload("tsp", self.ARCH, scale="tiny")
        with_kernel = Simulator(self.ARCH, baseline_protocol(), warmup=True).run(
            trace
        )
        assert accel.active_impl() == "accel"

        accel.reset()
        monkeypatch.setattr(build, "find_compiler", lambda: None)
        without = Simulator(self.ARCH, baseline_protocol(), warmup=True).run(trace)
        assert accel.active_impl() == "fallback"
        assert with_kernel.to_dict() == without.to_dict()
