"""FaultSchedule / FaultRule / FaultInjector: validation and determinism.

The determinism contract (DESIGN.md section 13) is the load-bearing claim:
a rule fires as a pure function of (schedule seed, failpoint name,
per-process hit index, process role).  These tests pin it directly - two
injectors given the same schedule must agree hit-for-hit - plus the
validation surface (unknown failpoints, malformed env schedules) and the
env round-trip spawn children rely on.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigError
from repro.faults import (
    FAILPOINTS,
    FAULTS_ENV,
    FaultInjector,
    FaultRule,
    FaultSchedule,
    activate_from_env,
)


class TestRuleValidation:
    def test_unknown_failpoint_rejected(self):
        with pytest.raises(ConfigError, match="unknown failpoint"):
            FaultRule("store.append.typo")

    def test_unknown_scope_rejected(self):
        with pytest.raises(ConfigError, match="scope"):
            FaultRule("worker.crash", scope="leader")

    def test_hit_is_one_based(self):
        with pytest.raises(ConfigError, match="1-based"):
            FaultRule("worker.crash", hit=0)

    def test_probability_bounds(self):
        with pytest.raises(ConfigError, match="probability"):
            FaultRule("worker.crash", p=1.5)

    def test_every_registered_failpoint_is_constructible(self):
        for point in FAILPOINTS:
            assert FaultRule(point).point == point

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown fault rule keys"):
            FaultRule.from_dict({"point": "worker.crash", "when": "always"})


class TestScheduleSerialization:
    def test_env_round_trip(self):
        schedule = FaultSchedule(
            seed=7,
            rules=(
                FaultRule("worker.crash", scope="worker", hit=2, times=3,
                          args={"exit_code": 7}),
                FaultRule("daemon.stall", p=0.25, args={"stall_s": 1.5}),
            ),
        )
        restored = FaultSchedule.from_spec(schedule.to_env())
        assert restored == schedule

    def test_env_value_is_compact_json(self):
        text = FaultSchedule(seed=1, rules=(FaultRule("worker.hang"),)).to_env()
        assert "\n" not in text and " " not in text
        assert json.loads(text)["seed"] == 1

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ConfigError, match="not valid JSON"):
            FaultSchedule.from_spec("{nope")
        with pytest.raises(ConfigError, match="JSON object"):
            FaultSchedule.from_spec("[1,2]")
        with pytest.raises(ConfigError, match="unknown fault schedule keys"):
            FaultSchedule.from_spec({"seed": 0, "faults": []})

    def test_activate_from_env_is_forgiving(self, caplog):
        # Import-time inheritance must never break `import repro` over a
        # typo'd env var - it warns and moves on.
        injector = FaultInjector()
        assert not activate_from_env(injector, environ={FAULTS_ENV: "{broken"})
        assert not injector.active
        assert activate_from_env(
            injector,
            environ={FAULTS_ENV: FaultSchedule(rules=(FaultRule("worker.hang"),)).to_env()},
        )
        assert injector.active


class TestInjectorDeterminism:
    def test_counting_rule_fires_on_exact_hits(self):
        injector = FaultInjector()
        injector.activate(FaultSchedule(rules=(
            FaultRule("store.append.torn", hit=2, times=2),
        )))
        fired = [injector.trigger("store.append.torn") is not None for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_times_zero_fires_forever(self):
        injector = FaultInjector()
        injector.activate(FaultSchedule(rules=(
            FaultRule("accel.build_fail", times=0),
        )))
        assert all(injector.trigger("accel.build_fail") for _ in range(10))

    def test_two_injectors_agree_hit_for_hit(self):
        # The determinism contract: same schedule => same decisions, even
        # for probabilistic rules (the draw is a pure function of
        # seed/point/hit-index, never of global PRNG state).
        schedule = FaultSchedule(seed=42, rules=(
            FaultRule("daemon.frame_drop", p=0.5, times=0),
        ))
        a, b = FaultInjector(), FaultInjector()
        a.activate(schedule)
        b.activate(schedule)
        decisions_a = [a.trigger("daemon.frame_drop") is not None for _ in range(50)]
        decisions_b = [b.trigger("daemon.frame_drop") is not None for _ in range(50)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seeds_differ(self):
        def decisions(seed):
            inj = FaultInjector()
            inj.activate(FaultSchedule(seed=seed, rules=(
                FaultRule("daemon.frame_drop", p=0.5, times=0),
            )))
            return [inj.trigger("daemon.frame_drop") is not None for _ in range(50)]

        assert decisions(1) != decisions(2)

    def test_scope_filters_by_role(self):
        schedule = FaultSchedule(rules=(FaultRule("worker.crash", scope="worker"),))
        parent = FaultInjector()
        parent.activate(schedule)  # role stays "parent"
        assert parent.trigger("worker.crash") is None
        worker = FaultInjector()
        worker.activate(schedule, role="worker")
        assert worker.trigger("worker.crash") is not None
        # The miss still counted the hit: scope gates firing, not counting.
        assert parent.hits("worker.crash") == 1

    def test_activate_resets_counters(self):
        injector = FaultInjector()
        schedule = FaultSchedule(rules=(FaultRule("worker.hang", hit=1),))
        injector.activate(schedule)
        assert injector.trigger("worker.hang") is not None
        assert injector.trigger("worker.hang") is None  # times=1 spent
        injector.activate(schedule)
        assert injector.trigger("worker.hang") is not None  # fresh counters

    def test_disabled_injector_is_inert(self):
        injector = FaultInjector()
        assert not injector.active
        assert injector.trigger("worker.crash") is None
        assert injector.hits("worker.crash") == 0
        injector.activate(FaultSchedule(rules=(FaultRule("worker.hang"),)))
        injector.deactivate()
        assert injector.trigger("worker.hang") is None

    def test_rule_args_reach_the_site(self):
        injector = FaultInjector()
        injector.activate(FaultSchedule(rules=(
            FaultRule("daemon.stall", args={"stall_s": 2.5}),
        )))
        rule = injector.trigger("daemon.stall")
        assert rule is not None
        assert rule.arg("stall_s", 60.0) == 2.5
        assert rule.arg("missing", "default") == "default"
