"""The chaos harness: matrix hygiene, the judge, and the CLI verb.

The expensive cells (process pools, subprocess daemons) run in CI's
``chaos-smoke`` job and in the watchdog/backend suites; here the harness
itself is under test - that it compares honestly, classifies correctly,
and refuses misconfiguration - using the cheap local-backend cells.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.faults import FAULTS, FaultRule
from repro.faults.chaos import (
    CHAOS_BACKENDS,
    DEFAULT_MATRIX,
    FAULT_CATALOG,
    chaos_jobs,
    run_chaos,
)


@pytest.fixture(autouse=True)
def clean_injector():
    FAULTS.deactivate()
    yield
    FAULTS.deactivate()


class TestMatrixHygiene:
    def test_catalog_rules_are_validated_fault_rules(self):
        for name, rules in FAULT_CATALOG.items():
            assert isinstance(rules, tuple), name
            for rule in rules:
                assert isinstance(rule, FaultRule)

    def test_default_matrix_names_are_known(self):
        for fault, backend in DEFAULT_MATRIX:
            assert fault in FAULT_CATALOG
            assert backend in CHAOS_BACKENDS

    def test_default_matrix_covers_the_ci_fault_set(self):
        # The chaos-smoke CI job leans on these being in the default
        # matrix; removing one silently shrinks coverage.
        faults = {fault for fault, _backend in DEFAULT_MATRIX}
        assert {"crash", "hang", "frame-drop", "torn-write", "build-fail",
                "mesh-fallback", "sched-fallback"} <= faults

    def test_chaos_jobs_are_small_and_deterministic(self):
        jobs = chaos_jobs()
        assert 2 <= len(jobs) <= 8
        assert [j.key for j in jobs] == [j.key for j in chaos_jobs()]

    def test_unknown_fault_refused(self):
        with pytest.raises(ConfigError, match="unknown fault"):
            run_chaos(faults=["crahs"])

    def test_unknown_backend_refused(self):
        with pytest.raises(ConfigError, match="unknown chaos backend"):
            run_chaos(backends=["thread"])

    def test_empty_matrix_refused(self):
        with pytest.raises(ConfigError, match="empty"):
            run_chaos(faults=["stall"], backends=["local"])


class TestJudge:
    def test_local_cells_hold_the_invariant(self):
        report = run_chaos(matrix=[
            ("none", "local"),
            ("torn-write", "local"),
            ("disk-full", "local"),
        ])
        assert report.ok
        by_fault = {cell.fault: cell for cell in report.cells}
        assert by_fault["none"].outcome == "identical"
        assert by_fault["torn-write"].outcome == "identical"
        assert by_fault["torn-write"].skipped_lines == 1  # accounting surfaced
        assert by_fault["disk-full"].outcome == "typed-error"
        assert "ENOSPC" in by_fault["disk-full"].detail or "No space" in \
            by_fault["disk-full"].detail or "no space" in by_fault["disk-full"].detail
        assert "zero silent divergence" in report.table()
        assert not FAULTS.active  # every cell deactivated behind itself

    def test_divergence_is_actually_detected(self, monkeypatch):
        """The judge must not be a rubber stamp: poison the reference and a
        perfectly clean run must be flagged as diverged."""
        import repro.faults.chaos as chaos_mod

        monkeypatch.setattr(
            chaos_mod, "reference_results",
            lambda jobs: {job.key: "not-the-real-stats" for job in jobs},
        )
        report = run_chaos(matrix=[("none", "local")])
        assert not report.ok
        assert report.cells[0].outcome == "diverged"
        assert "INVARIANT VIOLATION" in report.table()

    def test_report_round_trips_to_dict(self):
        report = run_chaos(matrix=[("none", "local")])
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["cells"][0]["fault"] == "none"
        assert payload["cells"][0]["backend"] == "local"
        assert payload["cells"][0]["outcome"] == "identical"


class TestChaosCli:
    def test_verb_exits_zero_on_clean_cells(self, capsys):
        from repro.runner.cli import main

        rc = main(["chaos", "--faults", "none", "torn-write",
                   "--backends", "local"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "zero silent divergence" in out

    def test_verb_writes_json_report(self, tmp_path, capsys):
        import json

        from repro.runner.cli import main

        path = tmp_path / "chaos.json"
        rc = main(["chaos", "--faults", "none", "--backends", "local",
                   "--json", str(path)])
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["ok"] is True
        assert len(payload["cells"]) == 1
