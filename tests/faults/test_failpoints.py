"""Failpoint sites: each injected fault produces its documented failure.

Exercises the parent-process sites directly (store appends, accel build,
telemetry sink) with the process-wide ``FAULTS`` injector active; the
process-pool and daemon sites are covered end-to-end by
``tests/runner/test_watchdog.py`` and the chaos harness tests.
"""

from __future__ import annotations

import errno

import pytest

from repro.common.errors import RunnerError
from repro.experiments.harness import adaptive_protocol, bench_arch
from repro.faults import FAULTS, FaultRule, FaultSchedule
from repro.obs import Telemetry
from repro.runner.job import Job
from repro.runner.parallel import execute_job
from repro.runner.store import ResultStore


@pytest.fixture(autouse=True)
def clean_injector():
    """Every test starts and ends with no schedule active."""
    FAULTS.deactivate()
    yield
    FAULTS.deactivate()


@pytest.fixture(scope="module")
def job() -> Job:
    return Job(workload="tsp", proto=adaptive_protocol(4), arch=bench_arch(16),
               scale="tiny")


@pytest.fixture(scope="module")
def stats(job):
    return execute_job(job)


def _activate(*rules: FaultRule) -> None:
    FAULTS.activate(FaultSchedule(seed=0, rules=rules))


class TestStoreFailpoints:
    def test_torn_append_counted_on_reload(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        _activate(FaultRule("store.append.torn", hit=1))
        store.put(job, stats)
        FAULTS.deactivate()
        # The writing process's in-memory entry is intact (the tear models
        # a crash a *future* load must survive)...
        assert store.get(job) is not None
        # ...while a fresh load counts the torn line and misses the entry.
        reopened = ResultStore(tmp_path)
        assert reopened.skipped_torn == 1
        assert reopened.skipped_lines == 1
        assert reopened.get(job) is None
        assert "1 skipped lines (1 torn, 0 foreign-schema)" in reopened.describe()

    def test_torn_line_does_not_poison_later_appends(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        _activate(FaultRule("store.append.torn", hit=1))
        store.put(job, stats)
        FAULTS.deactivate()
        store.put(job, stats)  # clean append after the torn one
        reopened = ResultStore(tmp_path)
        # The torn prefix has no newline, so the next record concatenates
        # onto it: one combined garbage line, then nothing else lost.
        assert reopened.skipped_torn == 1
        assert len(reopened) <= 1

    def test_corrupt_append_skipped_not_fatal(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        _activate(FaultRule("store.append.corrupt", hit=1))
        store.put(job, stats)
        FAULTS.deactivate()
        store.put(job, stats)
        reopened = ResultStore(tmp_path)  # non-UTF-8 head must not raise
        assert reopened.skipped_torn == 1
        assert reopened.get(job) is not None

    def test_disk_full_raises_enospc(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        _activate(FaultRule("store.append.disk_full", hit=1))
        with pytest.raises(OSError) as excinfo:
            store.put(job, stats)
        assert excinfo.value.errno == errno.ENOSPC
        FAULTS.deactivate()
        store.put(job, stats)  # the store object remains usable afterwards
        assert ResultStore(tmp_path).get(job) is not None

    def test_foreign_schema_lines_counted(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write('{"schema": -1, "key": "x", "stats": {}}\n')
        reopened = ResultStore(tmp_path)
        assert reopened.skipped_schema == 1
        assert reopened.skipped_torn == 0
        assert len(reopened) == 1


class TestCompactLock:
    def test_compact_refuses_while_writer_lock_held(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        other = ResultStore(tmp_path)
        # Simulate a second live process: its lock file carries a pid that
        # is alive (this one) but not ours from `other`'s perspective -
        # patch in a foreign pid that is definitely alive: pid 1... not
        # portable as "other"; use our own pid written under a lock name
        # another process would use.
        lock = store._lock_path(99999999)
        lock.write_text("99999999\n", encoding="utf-8")
        # 99999999 is almost certainly dead: it must be swept as stale.
        assert other.live_writers() == []
        assert not lock.exists()

    def test_compact_refuses_live_writer(self, tmp_path, job, stats, monkeypatch):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        other = ResultStore(tmp_path)
        foreign = store._lock_path(424242)
        foreign.write_text("424242\n", encoding="utf-8")
        monkeypatch.setattr("repro.runner.store._pid_alive", lambda pid: True)
        with pytest.raises(RunnerError, match="compact refused.*424242"):
            other.compact()

    def test_compact_proceeds_after_lock_released(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        with store.writer_lock():
            store.put(job, stats)
            store.put(job, stats)
            # Our own lock never blocks our own compact.
            kept, dropped = store.compact()
        assert (kept, dropped) == (1, 1)
        assert ResultStore(tmp_path).get(job) is not None

    def test_writer_lock_cleans_up(self, tmp_path):
        store = ResultStore(tmp_path)
        with store.writer_lock():
            assert list(tmp_path.glob("writer-*.lock"))
        assert not list(tmp_path.glob("writer-*.lock"))


class TestAccelFailpoint:
    def test_build_fail_degrades_to_reason(self, tmp_path, monkeypatch):
        from repro.accel import build

        monkeypatch.setenv(build.CACHE_ENV, str(tmp_path))
        _activate(FaultRule("accel.build_fail", times=0))
        artifact, info = build.build_artifact()
        assert artifact is None
        assert info["reason"] == "fault injected: accel.build_fail"


class TestTelemetryFailpoint:
    def test_sink_dead_self_disables(self, tmp_path):
        telemetry = Telemetry()
        telemetry.enable(str(tmp_path / "events.jsonl"))
        _activate(FaultRule("obs.sink_dead", hit=2))
        telemetry.event("first")  # hit 1: survives
        assert telemetry.enabled
        telemetry.event("second")  # hit 2: sink dies, telemetry disables
        assert not telemetry.enabled
        telemetry.event("third")  # quietly dropped, never raises
