"""Trace file I/O tests: round-trips, malformed input, format dispatch."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TraceError
from repro.common.types import Op
from repro.experiments.harness import bench_arch
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.registry import load_workload
from repro.workloads.tracefile import (
    load_trace,
    load_trace_binary,
    load_trace_text,
    save_trace,
    save_trace_binary,
    save_trace_text,
    trace_equal,
    trace_summary,
)


def small_trace() -> Trace:
    builder = TraceBuilder("unit", num_cores=2)
    shared = builder.address_space.alloc("shared", 4096)
    t0, t1 = builder.thread(0), builder.thread(1)
    t0.work(3)
    t0.read(shared)
    t0.write(shared + 64)
    t1.read(shared + 128)
    builder.barrier_all()
    t0.lock(7)
    t0.write(shared)
    t0.unlock(7)
    t1.work(5)
    return builder.build()


class TestTextRoundTrip:
    def test_round_trip_preserves_every_record(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "unit.trace"
        save_trace_text(trace, path)
        assert trace_equal(trace, load_trace_text(path))

    def test_header_contains_name_and_cores(self, tmp_path):
        path = tmp_path / "unit.trace"
        save_trace_text(small_trace(), path)
        header = path.read_text().splitlines()[0]
        assert header.startswith("#trace unit cores=2")

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "hand.trace"
        path.write_text(
            "#trace hand cores=1 version=1\n"
            "\n"
            "# a comment\n"
            "T0 R 0x1000  # inline comment\n"
            "T0 W 4160 2\n"
        )
        trace = load_trace_text(path)
        assert trace.per_core[0] == [(int(Op.READ), 0x1000, 0), (int(Op.WRITE), 4160, 2)]

    def test_interleaved_thread_records_keep_order(self, tmp_path):
        path = tmp_path / "interleave.trace"
        path.write_text(
            "#trace x cores=2 version=1\n"
            "T1 R 0x40\n"
            "T0 R 0x80\n"
            "T1 W 0xc0\n"
        )
        trace = load_trace_text(path)
        assert [a for _, a, _ in trace.per_core[1]] == [0x40, 0xC0]

    def test_work_records_round_trip(self, tmp_path):
        path = tmp_path / "unit.trace"
        save_trace_text(small_trace(), path)
        text = path.read_text()
        assert "T1 K 5" in text


class TestTextErrors:
    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("T0 R 0x40\n")
        with pytest.raises(TraceError, match="before #trace header"):
            load_trace_text(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        path.write_text("")
        with pytest.raises(TraceError, match="no #trace header"):
            load_trace_text(path)

    def test_duplicate_header_rejected(self, tmp_path):
        path = tmp_path / "dup.trace"
        path.write_text("#trace a cores=1\n#trace b cores=1\n")
        with pytest.raises(TraceError, match="duplicate"):
            load_trace_text(path)

    def test_unknown_opcode_rejected(self, tmp_path):
        path = tmp_path / "op.trace"
        path.write_text("#trace a cores=1\nT0 Z 0x40\n")
        with pytest.raises(TraceError, match="unknown opcode"):
            load_trace_text(path)

    def test_thread_id_out_of_range_rejected(self, tmp_path):
        path = tmp_path / "tid.trace"
        path.write_text("#trace a cores=2\nT5 R 0x40\n")
        with pytest.raises(TraceError, match="out of range"):
            load_trace_text(path)

    def test_bad_address_rejected(self, tmp_path):
        path = tmp_path / "addr.trace"
        path.write_text("#trace a cores=1\nT0 R banana\n")
        with pytest.raises(TraceError, match="invalid address"):
            load_trace_text(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "ver.trace"
        path.write_text("#trace a cores=1 version=99\n")
        with pytest.raises(TraceError, match="unsupported trace version"):
            load_trace_text(path)

    def test_unbalanced_locks_rejected_via_trace_validation(self, tmp_path):
        path = tmp_path / "lock.trace"
        path.write_text("#trace a cores=1\nT0 U 7\n")
        with pytest.raises(TraceError, match="unlock of free lock"):
            load_trace_text(path)

    def test_mismatched_barriers_rejected_via_trace_validation(self, tmp_path):
        path = tmp_path / "barrier.trace"
        path.write_text("#trace a cores=2\nT0 B 0\n")
        with pytest.raises(TraceError, match="barrier sequence"):
            load_trace_text(path)


class TestBinaryRoundTrip:
    def test_round_trip_preserves_every_record(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "unit.traceb"
        save_trace_binary(trace, path)
        assert trace_equal(trace, load_trace_binary(path))

    def test_v2_layout_is_fixed_width_columns(self, tmp_path):
        """Pin the v2 layout: header + name + per-stream (count + 3 columns).

        v2 trades the v1 format's 13-byte packed records for fixed 8-byte
        column cells (24 B/record) so the loader can bulk-copy the blocks
        straight into the IR without any per-record parsing.
        """
        trace = load_workload("tsp", bench_arch(), scale="tiny")
        bpath = tmp_path / "t.traceb"
        save_trace_binary(trace, bpath)
        expected = 10 + len(trace.name) + trace.num_cores * 8 + 24 * trace.total_records
        assert bpath.stat().st_size == expected

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.traceb"
        path.write_bytes(b"NOPE" + bytes(32))
        with pytest.raises(TraceError, match="bad magic"):
            load_trace_binary(path)

    def test_truncated_file_rejected(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trunc.traceb"
        save_trace_binary(trace, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 5])
        with pytest.raises(TraceError, match="truncated"):
            load_trace_binary(path)

    def test_trailing_garbage_rejected(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trail.traceb"
        save_trace_binary(trace, path)
        path.write_bytes(path.read_bytes() + b"junk")
        with pytest.raises(TraceError, match="trailing bytes"):
            load_trace_binary(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "tiny.traceb"
        path.write_bytes(b"RP")
        with pytest.raises(TraceError, match="truncated header"):
            load_trace_binary(path)


class TestDispatch:
    def test_save_load_by_extension(self, tmp_path):
        trace = small_trace()
        for name in ("t.trace", "t.traceb"):
            path = tmp_path / name
            save_trace(trace, path)
            assert trace_equal(trace, load_trace(path))

    def test_load_detects_binary_regardless_of_extension(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "oddly-named.txt"
        save_trace_binary(trace, path)
        assert trace_equal(trace, load_trace(path))


class TestTraceSummaryAndEquality:
    def test_summary_counts(self):
        summary = trace_summary(small_trace())
        assert summary["cores"] == 2
        assert summary["reads"] == 2
        assert summary["writes"] == 2
        assert summary["barriers_per_thread"] == 1
        assert summary["lock_acquisitions"] == 1
        assert summary["footprint_lines"] == 3

    def test_equality_detects_name_change(self):
        a, b = small_trace(), small_trace()
        b.name = "other"
        assert not trace_equal(a, b)

    def test_equality_detects_record_change(self):
        a, b = small_trace(), small_trace()
        b.addresses[0][0] = 0x9999  # columns are the trace's actual storage
        assert not trace_equal(a, b)

    def test_equality_detects_length_change(self):
        a, b = small_trace(), small_trace()
        b.ops[1].pop(), b.addresses[1].pop(), b.works[1].pop()
        assert not trace_equal(a, b)

    def test_per_core_view_is_a_copy(self):
        """Mutating the compatibility view must not corrupt the IR."""
        a = small_trace()
        view = a.per_core
        view[0][0] = (int(Op.WRITE), 0x9999, 0)
        assert a.per_core[0][0] != (int(Op.WRITE), 0x9999, 0)
        assert trace_equal(a, small_trace())


class TestGeneratedWorkloadRoundTrip:
    def test_real_workload_round_trips_both_formats(self, tmp_path):
        trace = load_workload("matmul", bench_arch(), scale="tiny")
        for name in ("w.trace", "w.traceb"):
            path = tmp_path / name
            save_trace(trace, path)
            assert trace_equal(trace, load_trace(path))

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.common.params import baseline_protocol
        from repro.sim.multicore import Simulator

        arch = bench_arch()
        trace = load_workload("dfs", arch, scale="tiny")
        path = tmp_path / "dfs.traceb"
        save_trace(trace, path)
        reloaded = load_trace(path)
        sim = Simulator(arch, baseline_protocol())
        original = sim.run(trace)
        again = sim.run(reloaded)
        assert original.completion_time == again.completion_time
        assert original.energy.total == again.energy.total
        assert original.network_flits == again.network_flits


@st.composite
def random_traces(draw):
    num_cores = draw(st.integers(min_value=1, max_value=4))
    streams = []
    for _tid in range(num_cores):
        n = draw(st.integers(min_value=0, max_value=20))
        stream = []
        for _ in range(n):
            op = draw(st.sampled_from([int(Op.READ), int(Op.WRITE), int(Op.WORK)]))
            address = 0 if op == int(Op.WORK) else draw(
                st.integers(min_value=0, max_value=(1 << 48) - 1)
            )
            work = draw(st.integers(min_value=0, max_value=1000))
            stream.append((op, address, work))
        streams.append(stream)
    return Trace("prop", num_cores, streams)


class TestPropertyRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(trace=random_traces())
    def test_binary_round_trip(self, trace, tmp_path_factory):
        path = tmp_path_factory.mktemp("prop") / "p.traceb"
        save_trace_binary(trace, path)
        assert trace_equal(trace, load_trace_binary(path))

    @settings(max_examples=30, deadline=None)
    @given(trace=random_traces())
    def test_text_round_trip(self, trace, tmp_path_factory):
        path = tmp_path_factory.mktemp("prop") / "p.trace"
        save_trace_text(trace, path)
        assert trace_equal(trace, load_trace_text(path))
