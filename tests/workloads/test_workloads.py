"""Workload framework and registry tests."""

import pytest

from repro.common.errors import ConfigError, TraceError
from repro.common.params import ArchConfig
from repro.common.types import Op
from repro.workloads.base import AddressSpace, TraceBuilder
from repro.workloads.registry import WORKLOAD_NAMES, WORKLOADS, get_workload, load_workload


@pytest.fixture(scope="module")
def arch():
    return ArchConfig(num_cores=16, num_memory_controllers=4)


class TestAddressSpace:
    def test_allocations_page_aligned_and_disjoint(self):
        space = AddressSpace()
        a = space.alloc("a", 100)
        b = space.alloc("b", 100)
        assert a % space.page_size == 0
        assert b % space.page_size == 0
        assert b >= a + 100

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc("a", 10)
        with pytest.raises(TraceError):
            space.alloc("a", 10)

    def test_nonpositive_rejected(self):
        with pytest.raises(TraceError):
            AddressSpace().alloc("a", 0)


class TestTraceBuilder:
    def test_pending_work_flushes_as_work_record(self):
        tb = TraceBuilder("t", 1)
        tb.thread(0).work(7)
        trace = tb.build()
        assert trace.per_core[0] == [(Op.WORK, 0, 7)]

    def test_work_attaches_to_next_access(self):
        tb = TraceBuilder("t", 1)
        tp = tb.thread(0)
        tp.work(5)
        tp.read(64)
        trace = tb.build()
        assert trace.per_core[0] == [(Op.READ, 64, 5)]

    def test_read_write_words(self):
        tb = TraceBuilder("t", 1)
        tp = tb.thread(0)
        tp.read_words(0, 3)
        tp.write_words(64, 2, stride_words=8)
        trace = tb.build()
        ops = trace.per_core[0]
        assert [op for op, _, _ in ops] == [Op.READ] * 3 + [Op.WRITE] * 2
        assert ops[1][1] == 8  # consecutive words
        assert ops[4][1] == 64 + 64  # stride of one line

    def test_instruction_count(self):
        tb = TraceBuilder("t", 2)
        tb.thread(0).work(10)
        tb.thread(0).read(0)
        tb.thread(1).work(4)
        trace = tb.build()
        # 10 work + 1 read instruction + 4 work.
        assert trace.instructions == 15

    def test_footprint_lines(self):
        tb = TraceBuilder("t", 1)
        tp = tb.thread(0)
        tp.read(0)
        tp.read(8)  # same line
        tp.read(64)
        assert tb.build().footprint_lines() == 2


class TestRegistry:
    def test_exactly_21_benchmarks(self):
        assert len(WORKLOAD_NAMES) == 21
        assert len(WORKLOADS) == 21

    def test_paper_suite_composition(self):
        suites = {}
        for spec in WORKLOADS.values():
            suites.setdefault(spec.suite, []).append(spec.name)
        assert len(suites["splash2"]) == 6
        assert len(suites["parsec"]) == 6
        assert len(suites["mibench"]) == 4
        assert len(suites["uhpc"]) == 2
        assert len(suites["others"]) == 3

    def test_table2_sizes_recorded(self):
        assert WORKLOADS["radix"].table2_size == "1M integers, radix 1024"
        assert WORKLOADS["concomp"].table2_size == "2^18-node graph"
        assert WORKLOADS["tsp"].table2_size == "16 cities"

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            get_workload("doom3")

    def test_unknown_scale_rejected(self, arch):
        with pytest.raises(ConfigError):
            load_workload("radix", arch, scale="enormous")

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_every_workload_builds_at_tiny_scale(self, arch, name):
        trace = load_workload(name, arch, scale="tiny")
        assert trace.num_cores == 16
        assert trace.memory_accesses > 0
        assert trace.instructions > trace.memory_accesses  # work interleaved

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_traces_are_deterministic(self, arch, name):
        a = load_workload(name, arch, scale="tiny")
        b = load_workload(name, arch, scale="tiny")
        assert a.per_core == b.per_core

    def test_scales_grow(self, arch):
        tiny = load_workload("canneal", arch, scale="tiny")
        small = load_workload("canneal", arch, scale="small")
        assert small.memory_accesses > tiny.memory_accesses

    def test_overrides_forwarded(self, arch):
        base = load_workload("canneal", arch, scale="tiny")
        bigger = load_workload("canneal", arch, scale="tiny", moves_per_thread=48)
        assert bigger.memory_accesses > base.memory_accesses
