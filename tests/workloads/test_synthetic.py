"""Tests for the synthetic access-pattern generators."""

from __future__ import annotations

import pytest

from repro.common.errors import TraceError
from repro.common.params import ArchConfig, CacheGeometry, ProtocolConfig, baseline_protocol
from repro.sim.multicore import Simulator
from repro.workloads.synthetic import (
    SYNTHETIC_PATTERNS,
    hotspot,
    migratory,
    producer_consumer,
    streaming,
    uniform_random,
)

ARCH = ArchConfig(
    num_cores=16,
    num_memory_controllers=4,
    l1i=CacheGeometry(1, 2, 1),
    l1d=CacheGeometry(2, 2, 1),
    l2=CacheGeometry(16, 4, 7),
)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(SYNTHETIC_PATTERNS))
    def test_same_seed_same_trace(self, name):
        generator = SYNTHETIC_PATTERNS[name]
        a = generator(16, seed=7)
        b = generator(16, seed=7)
        assert a.per_core == b.per_core

    def test_different_seed_different_trace(self):
        a = uniform_random(16, seed=1)
        b = uniform_random(16, seed=2)
        assert a.per_core != b.per_core


class TestShapes:
    def test_uniform_access_count(self):
        trace = uniform_random(16, lines=64, accesses_per_core=100)
        assert trace.memory_accesses == 16 * 100

    def test_uniform_write_fraction_zero_means_read_only(self):
        from repro.common.types import Op

        trace = uniform_random(16, write_fraction=0.0, accesses_per_core=50)
        writes = sum(
            1 for s in trace.per_core for op, _a, _w in s if op == Op.WRITE
        )
        assert writes == 0

    def test_hotspot_touches_hot_more_than_cold(self):
        trace = hotspot(16, hot_lines=4, cold_lines=1024, accesses_per_core=500,
                        hot_fraction=0.9)
        # 4 hot lines absorb ~90% of accesses: footprint stays large but
        # the per-line access histogram is extremely skewed.
        counts: dict[int, int] = {}
        for stream in trace.per_core:
            for _op, address, _w in stream:
                counts[address // 64] = counts.get(address // 64, 0) + 1
        top4 = sum(sorted(counts.values(), reverse=True)[:4])
        assert top4 > 0.8 * sum(counts.values())

    def test_streaming_footprint_matches_lines(self):
        trace = streaming(16, lines=256, rounds=1)
        assert trace.footprint_lines() == 256

    def test_producer_consumer_pairs_disjoint_buffers(self):
        from repro.common.types import Op

        trace = producer_consumer(16, buffer_lines=8, handoffs=2)
        pair_lines = []
        for pair in range(8):
            lines = set()
            for tid in (2 * pair, 2 * pair + 1):
                for op, address, _w in trace.per_core[tid]:
                    if op in (Op.READ, Op.WRITE):
                        lines.add(address // 64)
            pair_lines.append(lines)
        for i in range(8):
            for j in range(i + 1, 8):
                assert not (pair_lines[i] & pair_lines[j])

    def test_migratory_lock_protected(self):
        from repro.common.types import Op

        trace = migratory(16, rounds=2)
        for stream in trace.per_core:
            ops = [op for op, _a, _w in stream]
            assert ops.count(Op.LOCK) == ops.count(Op.UNLOCK) == 2


class TestValidation:
    def test_nonpositive_parameters_rejected(self):
        with pytest.raises(TraceError, match="must be positive"):
            uniform_random(16, lines=0)

    def test_bad_write_fraction_rejected(self):
        with pytest.raises(TraceError, match="write_fraction"):
            uniform_random(16, write_fraction=1.5)

    def test_odd_core_count_rejected_for_pairs(self):
        with pytest.raises(TraceError, match="even core count"):
            producer_consumer(9)


class TestSimulation:
    @pytest.mark.parametrize("name", sorted(SYNTHETIC_PATTERNS))
    def test_patterns_simulate_with_verification(self, name):
        generator = SYNTHETIC_PATTERNS[name]
        trace = generator(16, seed=3)
        # Keep runs fast: shrink the knobs where the pattern allows.
        if name == "streaming":
            trace = generator(16, lines=256, rounds=1, seed=3)
        elif name == "uniform":
            trace = generator(16, lines=128, accesses_per_core=200, seed=3)
        elif name == "hotspot":
            trace = generator(16, accesses_per_core=200, seed=3)
        for proto in (baseline_protocol(), ProtocolConfig(pct=4)):
            Simulator(ARCH, proto, verify=True).run(trace)

    def test_streaming_rewards_the_adaptive_protocol(self):
        trace = streaming(16, lines=1024, rounds=2)
        base = Simulator(ARCH, baseline_protocol(), warmup=True).run(trace)
        adapt = Simulator(ARCH, ProtocolConfig(pct=4), warmup=True).run(trace)
        assert adapt.energy.total < base.energy.total

    def test_migratory_converts_sharing_to_word_misses(self):
        from repro.common.types import MissType

        trace = migratory(16, rounds=6, uses_per_visit=2)  # below PCT=4
        base = Simulator(ARCH, baseline_protocol(), warmup=True).run(trace)
        adapt = Simulator(ARCH, ProtocolConfig(pct=4), warmup=True).run(trace)
        assert adapt.miss.count(MissType.WORD) > 0
        assert adapt.miss.count(MissType.SHARING) < base.miss.count(MissType.SHARING)
