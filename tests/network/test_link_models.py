"""Link-contention model tests: epoch vs naive vs none (DESIGN.md #6)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.errors import ConfigError
from repro.common.params import ArchConfig
from repro.network.mesh import MeshNetwork
from repro.network.messages import MsgType

ARCH = ArchConfig(num_cores=16, num_memory_controllers=4)


def net_for(model: str) -> MeshNetwork:
    return MeshNetwork(dataclasses.replace(ARCH, link_model=model))


class TestConfig:
    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError, match="link_model"):
            ArchConfig(num_cores=16, num_memory_controllers=4, link_model="magic")

    def test_none_model_disables_contention(self):
        assert not net_for("none").model_contention

    def test_explicit_override_wins(self):
        net = MeshNetwork(dataclasses.replace(ARCH, link_model="epoch"), model_contention=False)
        assert not net.model_contention


class TestNaiveModel:
    def test_uncontended_latency_matches_epoch(self):
        for model in ("epoch", "naive", "none"):
            t = net_for(model).unicast(0, 3, MsgType.READ_REQ, 100.0)
            assert t == 100.0 + 3 * ARCH.hop_latency, model

    def test_future_reservation_blocks_earlier_traffic(self):
        """The naive model's defining artifact.

        A message reserved far in the future pushes the link's high-water
        mark; an earlier message on the same link then waits for it even
        though the link is idle in between.  The epoch model is immune.
        """
        naive = net_for("naive")
        naive.unicast(0, 1, MsgType.LINE_REPLY, 10_000.0)  # future DRAM reply
        blocked = naive.unicast(0, 1, MsgType.READ_REQ, 0.0)
        assert blocked > 10_000.0

        epoch = net_for("epoch")
        epoch.unicast(0, 1, MsgType.LINE_REPLY, 10_000.0)
        unblocked = epoch.unicast(0, 1, MsgType.READ_REQ, 0.0)
        assert unblocked == ARCH.hop_latency

    def test_back_to_back_messages_serialize(self):
        naive = net_for("naive")
        first = naive.unicast(0, 1, MsgType.LINE_REPLY, 0.0)
        second = naive.unicast(0, 1, MsgType.LINE_REPLY, 0.0)
        assert second > first

    def test_reset_contention_clears_high_water_marks(self):
        naive = net_for("naive")
        naive.unicast(0, 1, MsgType.LINE_REPLY, 10_000.0)
        naive.reset_contention()
        assert naive.unicast(0, 1, MsgType.READ_REQ, 0.0) == ARCH.hop_latency

    def test_traffic_counters_identical_across_models(self):
        counts = []
        for model in ("epoch", "naive", "none"):
            net = net_for(model)
            net.unicast(0, 5, MsgType.LINE_REPLY, 0.0)
            net.broadcast(0, MsgType.INV_BROADCAST, 100.0)
            counts.append((net.router_flit_traversals, net.link_flit_traversals, net.flits_sent))
        assert counts[0] == counts[1] == counts[2]
