"""Mesh topology and XY routing tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.network.topology import Mesh2D


@pytest.fixture
def mesh():
    return Mesh2D(64)


def test_requires_square(mesh):
    with pytest.raises(ConfigError):
        Mesh2D(48)


def test_coord_roundtrip(mesh):
    for tile in range(64):
        x, y = mesh.coord(tile)
        assert mesh.tile_at(x, y) == tile


def test_hops_is_manhattan(mesh):
    assert mesh.hops(0, 0) == 0
    assert mesh.hops(0, 7) == 7
    assert mesh.hops(0, 63) == 14  # corner to corner of an 8x8 mesh
    assert mesh.hops(9, 18) == 2


def test_route_empty_for_self(mesh):
    assert mesh.route(5, 5) == ()


def test_route_x_then_y(mesh):
    # From (0,0) to (2,1): two X links then one Y link.
    links = mesh.route(0, mesh.tile_at(2, 1))
    assert len(links) == 3
    # First hop goes to tile (1,0) = 1.
    assert links[0] == mesh.link_id(0, 1)
    assert links[1] == mesh.link_id(1, 2)
    assert links[2] == mesh.link_id(2, 10)


@given(st.integers(0, 63), st.integers(0, 63))
def test_route_length_equals_hops(src, dst):
    mesh = Mesh2D(64)
    assert len(mesh.route(src, dst)) == mesh.hops(src, dst)


@given(st.integers(0, 63), st.integers(0, 63))
def test_route_links_are_adjacent_chain(src, dst):
    mesh = Mesh2D(64)
    here = src
    for link in mesh.route(src, dst):
        link_src, link_dst = divmod(link, mesh.num_tiles)
        assert link_src == here
        assert mesh.hops(link_src, link_dst) == 1
        here = link_dst
    assert here == dst


@given(st.integers(0, 63))
def test_broadcast_tree_spans_all_tiles(root):
    mesh = Mesh2D(64)
    edges = mesh.broadcast_tree(root)
    assert len(edges) == 63  # spanning tree
    reached = {root}
    for src, dst in edges:
        assert src in reached, "edges must arrive in BFS order"
        assert dst not in reached, "each tile reached exactly once"
        assert mesh.hops(src, dst) == 1
        reached.add(dst)
    assert reached == set(range(64))


def test_broadcast_tree_cached(mesh):
    assert mesh.broadcast_tree(3) is mesh.broadcast_tree(3)


def test_tile_bounds_checked(mesh):
    with pytest.raises(ConfigError):
        mesh.coord(64)
    with pytest.raises(ConfigError):
        mesh.route(0, 64)
