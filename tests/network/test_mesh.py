"""Mesh timing/contention/traffic-accounting tests."""

import pytest

from repro.common.params import ArchConfig
from repro.network.mesh import EPOCH_CYCLES, MeshNetwork
from repro.network.messages import MsgType, message_flits


@pytest.fixture
def arch():
    return ArchConfig(num_cores=16, num_memory_controllers=4)


@pytest.fixture
def net(arch):
    return MeshNetwork(arch)


class TestFlitSizing:
    def test_header_only_messages(self, arch):
        for msg in (MsgType.READ_REQ, MsgType.INV_REQ, MsgType.INV_ACK,
                    MsgType.WB_REQ, MsgType.EVICT_NOTIFY, MsgType.MEM_READ_REQ):
            assert message_flits(msg, arch) == 1

    def test_word_messages(self, arch):
        # Section 3.6: the data word rides with every write request.
        for msg in (MsgType.WRITE_REQ, MsgType.UPGRADE_REQ, MsgType.WORD_REPLY):
            assert message_flits(msg, arch) == 2

    def test_line_messages(self, arch):
        for msg in (MsgType.LINE_REPLY, MsgType.WB_DATA, MsgType.EVICT_DIRTY,
                    MsgType.MEM_READ_REPLY, MsgType.MEM_WRITE):
            assert message_flits(msg, arch) == 9  # 1 header + 8 payload


class TestUnicast:
    def test_same_tile_is_free(self, net):
        flits_before = net.flits_sent
        assert net.unicast(3, 3, MsgType.LINE_REPLY, 100.0) == 100.0
        assert net.flits_sent == flits_before

    def test_uncontended_latency(self, net):
        # 1 hop: head departs at t, arrives t+2; tail +flits-1.
        arrival = net.unicast(0, 1, MsgType.READ_REQ, 0.0)
        assert arrival == 2.0
        arrival = net.unicast(4, 5, MsgType.LINE_REPLY, 0.0)
        assert arrival == 2.0 + 8  # 9-flit tail

    def test_multi_hop_latency(self, net):
        # 0 -> 3: 3 hops of 2 cycles; single-flit message.
        assert net.unicast(0, 3, MsgType.READ_REQ, 0.0) == 6.0

    def test_contention_serializes_messages(self, arch):
        # Epoch-based accounting: once an epoch's capacity (EPOCH_CYCLES
        # flits) is consumed, later messages spill into the next epoch.
        net = MeshNetwork(arch)
        arrivals = [net.unicast(0, 1, MsgType.LINE_REPLY, 0.0) for _ in range(6)]
        assert arrivals[-1] > arrivals[0]  # bandwidth is finite

    def test_no_contention_model(self, arch):
        net = MeshNetwork(arch, model_contention=False)
        assert net.unicast(0, 1, MsgType.LINE_REPLY, 0.0) == 10.0
        assert net.unicast(0, 1, MsgType.LINE_REPLY, 0.0) == 10.0

    def test_future_reservation_does_not_block_earlier_message(self, arch):
        # Epoch accounting: a reservation far in the future must not delay
        # a message sent now (regression test for the high-water-mark bug).
        net = MeshNetwork(arch)
        net.unicast(0, 1, MsgType.LINE_REPLY, 10 * EPOCH_CYCLES)
        early = net.unicast(0, 1, MsgType.READ_REQ, 0.0)
        assert early == 2.0

    def test_traffic_counters(self, net):
        net.unicast(0, 2, MsgType.LINE_REPLY, 0.0)  # 2 hops x 9 flits
        assert net.link_flit_traversals == 18
        assert net.router_flit_traversals == 27  # 3 routers
        assert net.messages_sent == 1
        assert net.flits_sent == 9


class TestBroadcast:
    def test_reaches_all_tiles(self, net):
        arrivals = net.broadcast(5, MsgType.INV_BROADCAST, 0.0)
        assert set(arrivals) == set(range(16))
        assert arrivals[5] == 0.0
        assert all(t >= 0.0 for t in arrivals.values())

    def test_farther_tiles_arrive_later(self, net):
        arrivals = net.broadcast(0, MsgType.INV_BROADCAST, 0.0)
        assert arrivals[1] <= arrivals[3]
        assert arrivals[1] <= arrivals[15]

    def test_single_injection_traffic(self, net):
        net.broadcast(0, MsgType.INV_BROADCAST, 0.0)
        # One flit over each of the 15 tree links.
        assert net.link_flit_traversals == 15
        assert net.flits_sent == 1


class TestReset:
    def test_reset_contention_clears_reservations(self, arch):
        net = MeshNetwork(arch)
        net.unicast(0, 1, MsgType.LINE_REPLY, 0.0)
        net.reset_contention()
        assert net.unicast(0, 1, MsgType.LINE_REPLY, 0.0) == 10.0
