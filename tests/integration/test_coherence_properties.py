"""Property-based coherence verification.

The strongest correctness check in the suite: random multithreaded access
sequences are driven through the full protocol stack in verify mode, where
the engine asserts SWMR after every directory operation and checks every
read's value against a golden memory maintained in coherence order.  Any
lost write-back, stale fill or sharer-tracking bug raises CoherenceError.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.params import ArchConfig, CacheGeometry, ProtocolConfig, baseline_protocol
from repro.protocol.engine import ProtocolEngine

BASE = 1 << 30
LINE = 64


def tiny_arch():
    return ArchConfig(
        num_cores=4,
        num_memory_controllers=2,
        l1d=CacheGeometry(1, 2, 1),
        l2=CacheGeometry(2, 2, 7),
    )


PROTOCOLS = [
    baseline_protocol(),
    ProtocolConfig(pct=2, classifier="complete", remote_policy="rat"),
    ProtocolConfig(pct=4, classifier="limited", limited_k=1, remote_policy="rat"),
    ProtocolConfig(pct=4, classifier="limited", limited_k=3, remote_policy="timestamp"),
    ProtocolConfig(pct=3, classifier="complete", one_way=True),
    ProtocolConfig(pct=4, classifier="limited", limited_k=3, directory="fullmap"),
]

access_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # core
        st.booleans(),  # write?
        st.integers(min_value=0, max_value=23),  # line index
        st.integers(min_value=0, max_value=7),  # word offset
    ),
    min_size=1,
    max_size=300,
)


@pytest.mark.parametrize("proto", PROTOCOLS, ids=lambda p: (
    f"{p.protocol}-{p.classifier}-k{p.limited_k}-{p.remote_policy}"
    + ("-1way" if p.one_way else "") + f"-{p.directory}"
))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(steps=access_steps)
def test_random_traffic_is_coherent(proto, steps):
    """SWMR + data-value invariants hold for arbitrary interleavings."""
    engine = ProtocolEngine(tiny_arch(), proto, verify=True)
    now = 0.0
    for core, is_write, line_index, word in steps:
        address = BASE + line_index * LINE + word * 8
        result = engine.access(core, is_write, address, now)
        assert result.latency >= 0.0
        now += 1.0 + result.latency


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(steps=access_steps)
def test_same_page_thrash_is_coherent(steps):
    """Concentrated traffic on one page exercises R-NUCA transitions."""
    engine = ProtocolEngine(tiny_arch(), ProtocolConfig(pct=2), verify=True)
    now = 0.0
    for core, is_write, line_index, word in steps:
        address = BASE + (line_index % 4) * LINE + word * 8
        now += 1.0 + engine.access(core, is_write, address, now).latency


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(steps=access_steps, pct=st.integers(min_value=1, max_value=8))
def test_any_pct_is_coherent(steps, pct):
    proto = ProtocolConfig(pct=pct, classifier="limited", limited_k=2)
    engine = ProtocolEngine(tiny_arch(), proto, verify=True)
    now = 0.0
    for core, is_write, line_index, word in steps:
        address = BASE + line_index * LINE + word * 8
        now += 1.0 + engine.access(core, is_write, address, now).latency


def test_write_visibility_chain():
    """A value written by one core is visible to every other core, through
    arbitrary private/remote service decisions."""
    engine = ProtocolEngine(tiny_arch(), ProtocolConfig(pct=2), verify=True)
    now = 0.0
    for i in range(40):
        writer = i % 4
        reader = (i + 1) % 4
        address = BASE + (i % 6) * LINE
        now += 1 + engine.access(writer, True, address, now).latency
        now += 1 + engine.access(reader, False, address, now).latency
        # verify mode asserts the read sees the write; reaching here is the test


def test_eviction_writeback_preserves_data():
    """Dirty L1/L2 evictions must push data down without loss."""
    engine = ProtocolEngine(tiny_arch(), baseline_protocol(), verify=True)
    now = 0.0
    # Write many distinct lines to force L1 and L2 evictions with dirty data.
    for i in range(64):
        now += 1 + engine.access(0, True, BASE + i * LINE, now).latency
    # Read everything back: golden memory checks each value.
    for i in range(64):
        now += 1 + engine.access(1, False, BASE + i * LINE, now).latency
