"""Integration tests asserting the paper's qualitative claims.

These run real workloads through the full stack (at reduced scale) and check
the *direction* of every headline result - the quantitative tables live in
the benchmark harness and EXPERIMENTS.md.
"""

import pytest

from repro.common.params import ProtocolConfig, baseline_protocol
from repro.experiments.harness import ExperimentRunner, adaptive_protocol, bench_arch, protocol_for_pct
from repro.sim.multicore import Simulator
from repro.workloads.registry import WORKLOAD_NAMES, load_workload


@pytest.fixture(scope="module")
def runner():
    """16-core runner at tiny scale: fast but exercises every mechanism."""
    return ExperimentRunner(
        arch=bench_arch(16),
        scale="tiny",
        workloads=("streamcluster", "blackscholes", "water-sp", "tsp", "canneal"),
    )


class TestHeadlineDirection:
    def test_adaptive_saves_energy_on_sharing_workload(self, runner):
        base = runner.run("streamcluster", protocol_for_pct(1))
        adaptive = runner.run("streamcluster", protocol_for_pct(4))
        assert adaptive.energy.total < base.energy.total

    def test_adaptive_converts_misses_to_words(self, runner):
        adaptive = runner.run("streamcluster", protocol_for_pct(4))
        assert adaptive.remote_accesses > 0
        # Demotions happen during the learning (warmup) phase: measure cold.
        cold = Simulator(runner.arch, protocol_for_pct(4)).run(runner.trace("streamcluster"))
        assert cold.demotions > 0

    def test_baseline_has_no_word_misses(self, runner):
        base = runner.run("canneal", protocol_for_pct(1))
        assert base.remote_accesses == 0
        assert base.miss.breakdown()["word"] == 0

    def test_low_miss_rate_workload_is_insensitive(self, runner):
        base = runner.run("water-sp", protocol_for_pct(1))
        adaptive = runner.run("water-sp", protocol_for_pct(4))
        assert adaptive.completion_time == pytest.approx(base.completion_time, rel=0.15)
        assert adaptive.energy.total == pytest.approx(base.energy.total, rel=0.15)

    def test_invalidation_storms_reduced(self, runner):
        base = runner.run("tsp", protocol_for_pct(1))
        adaptive = runner.run("tsp", protocol_for_pct(4))
        base_invals = base.unicast_invalidations + base.broadcast_invalidations
        adaptive_invals = adaptive.unicast_invalidations + adaptive.broadcast_invalidations
        assert adaptive_invals < base_invals

    def test_network_traffic_reduced(self, runner):
        base = runner.run("canneal", protocol_for_pct(1))
        adaptive = runner.run("canneal", protocol_for_pct(4))
        assert adaptive.network_flits < base.network_flits


class TestUtilizationHistograms:
    def test_streamcluster_invalidations_skew_low(self, runner):
        """Figure 1: most streamcluster invalidations are low-utilization."""
        stats = runner.run("streamcluster", baseline_protocol())
        pct = stats.inval_histogram.percentages()
        low = pct["1"] + pct["2-3"]
        assert stats.inval_histogram.total > 0
        assert low > 50.0

    def test_histogram_totals_match_events(self):
        # Small-scale workloads may fit the L1 entirely; canneal at small
        # scale streams far past it, so evictions must be recorded.
        arch = bench_arch(16)
        trace = load_workload("canneal", arch, scale="small")
        cold = Simulator(arch, baseline_protocol()).run(trace)
        assert cold.evict_histogram.total > 0


class TestClassifierVariants:
    def test_limited1_no_worse_than_30pct_vs_limited3(self, runner):
        """k=1 misclassifies; k=3 recovers (Section 5.3 direction)."""
        k1 = runner.run("streamcluster", adaptive_protocol(classifier="limited", limited_k=1))
        k3 = runner.run("streamcluster", adaptive_protocol(classifier="limited", limited_k=3))
        complete = runner.run("streamcluster", adaptive_protocol(classifier="complete"))
        # k=3 should land close to complete; k=1 may drift further.
        drift_k3 = abs(k3.energy.total / complete.energy.total - 1.0)
        drift_k1 = abs(k1.energy.total / complete.energy.total - 1.0)
        assert drift_k3 <= drift_k1 + 0.10

    def test_timestamp_and_rat_both_run(self, runner):
        rat = runner.run("blackscholes", adaptive_protocol(remote_policy="rat"))
        ts = runner.run("blackscholes", adaptive_protocol(remote_policy="timestamp"))
        assert rat.completion_time > 0 and ts.completion_time > 0

    def test_one_way_never_promotes(self, runner):
        stats = runner.run("streamcluster", adaptive_protocol(one_way=True))
        assert stats.promotions == 0


class TestFullSuiteSmoke:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_all_workloads_run_verified(self, name):
        """Every benchmark completes under the adaptive protocol with full
        functional verification (Graphite's correctness requirement)."""
        arch = bench_arch(16)
        trace = load_workload(name, arch, scale="tiny")
        stats = Simulator(arch, ProtocolConfig(pct=4), verify=True).run(trace)
        assert stats.completion_time > 0
        assert stats.miss.accesses == trace.memory_accesses

    @pytest.mark.parametrize("name", ("radix", "dedup", "dijkstra-ss"))
    def test_warmup_runs_verified(self, name):
        arch = bench_arch(16)
        trace = load_workload(name, arch, scale="tiny")
        stats = Simulator(arch, ProtocolConfig(pct=4), verify=True, warmup=True).run(trace)
        assert stats.completion_time > 0
