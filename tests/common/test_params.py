"""Configuration dataclass tests: Table-1 defaults and validation."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import (
    ArchConfig,
    CacheGeometry,
    EnergyConfig,
    ProtocolConfig,
    baseline_protocol,
)


class TestCacheGeometry:
    def test_table1_l1i(self):
        geo = CacheGeometry(16, 4, 1)
        assert geo.num_lines == 256
        assert geo.num_sets == 64

    def test_table1_l1d(self):
        geo = CacheGeometry(32, 4, 1)
        assert geo.num_lines == 512
        assert geo.num_sets == 128

    def test_table1_l2(self):
        geo = CacheGeometry(256, 8, 7)
        assert geo.num_lines == 4096
        assert geo.num_sets == 512

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheGeometry(24, 4, 1)

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            CacheGeometry(-1, 4, 1)
        with pytest.raises(ConfigError):
            CacheGeometry(16, 0, 1)


class TestArchConfig:
    def test_table1_defaults(self):
        arch = ArchConfig()
        assert arch.num_cores == 64
        assert arch.frequency_ghz == 1.0
        assert arch.l1i.size_kb == 16 and arch.l1i.associativity == 4
        assert arch.l1d.size_kb == 32 and arch.l1d.associativity == 4
        assert arch.l2.size_kb == 256 and arch.l2.associativity == 8
        assert arch.l2.latency == 7
        assert arch.line_size == 64
        assert arch.hop_latency == 2
        assert arch.flit_bits == 64
        assert arch.num_memory_controllers == 8
        assert arch.dram_latency_cycles == 100
        assert arch.dram_bandwidth_bytes_per_cycle == 5.0
        assert arch.ackwise_pointers == 4

    def test_derived_quantities(self):
        arch = ArchConfig()
        assert arch.mesh_width == 8
        assert arch.words_per_line == 8
        assert arch.line_flits == 8
        assert arch.word_flits == 1

    def test_memory_controller_tiles_valid(self):
        arch = ArchConfig()
        assert len(arch.memory_controller_tiles) == 8
        assert len(set(arch.memory_controller_tiles)) == 8
        assert all(0 <= t < 64 for t in arch.memory_controller_tiles)

    def test_controller_interleaving_deterministic(self):
        arch = ArchConfig()
        assert arch.controller_for_line(0) == arch.controller_for_line(8)
        tiles = {arch.controller_for_line(line) for line in range(64)}
        assert tiles == set(arch.memory_controller_tiles)

    def test_rejects_non_square_core_count(self):
        with pytest.raises(ConfigError):
            ArchConfig(num_cores=48)

    def test_small_mesh_supported(self):
        arch = ArchConfig(num_cores=16, num_memory_controllers=4)
        assert arch.mesh_width == 4

    def test_rejects_bad_cluster(self):
        with pytest.raises(ConfigError):
            ArchConfig(num_cores=64, instruction_cluster_size=3)


class TestProtocolConfig:
    def test_paper_defaults(self):
        proto = ProtocolConfig()
        assert proto.pct == 4
        assert proto.classifier == "limited"
        assert proto.limited_k == 3
        assert proto.rat_max == 16
        assert proto.n_rat_levels == 2
        assert proto.remote_policy == "rat"
        assert proto.directory == "ackwise"
        assert not proto.one_way
        assert proto.is_adaptive

    def test_rat_levels_two(self):
        assert ProtocolConfig(pct=4, rat_max=16, n_rat_levels=2).rat_levels() == (4, 16)

    def test_rat_levels_single(self):
        assert ProtocolConfig(pct=4, n_rat_levels=1).rat_levels() == (4,)

    def test_rat_levels_monotone(self):
        for n in (2, 3, 4, 8):
            levels = ProtocolConfig(pct=4, rat_max=16, n_rat_levels=n).rat_levels()
            assert len(levels) == n
            assert levels[0] == 4 and levels[-1] == 16
            assert list(levels) == sorted(levels)

    def test_baseline_helper(self):
        base = baseline_protocol()
        assert base.protocol == "baseline"
        assert not base.is_adaptive
        assert base.pct == 1

    def test_replaced(self):
        proto = ProtocolConfig().replaced(pct=8)
        assert proto.pct == 8
        assert proto.limited_k == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(protocol="magic"),
            dict(pct=0),
            dict(classifier="oracle"),
            dict(limited_k=0),
            dict(remote_policy="psychic"),
            dict(rat_max=2, pct=4),
            dict(n_rat_levels=0),
            dict(directory="snooping"),
        ],
    )
    def test_validation_errors(self, kwargs):
        with pytest.raises(ConfigError):
            ProtocolConfig(**kwargs)


class TestEnergyConfig:
    def test_relative_magnitudes(self):
        cfg = EnergyConfig()
        # Links cost more than routers per flit (11nm wire scaling).
        assert cfg.link_per_flit > cfg.router_per_flit
        # A line access is several times a word access at the L2.
        assert cfg.l2_line_read > 3 * cfg.l2_word_read
        # L1 accesses are cheaper than L2 word accesses.
        assert cfg.l1d_read < cfg.l2_word_read
        # Directory events are negligible next to cache accesses.
        assert cfg.directory_lookup < cfg.l1d_read

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            EnergyConfig(l1d_read=-1.0)


class TestDirectorylessValidation:
    def test_bogus_directory_rejected_even_for_directoryless_protocols(self):
        with pytest.raises(ConfigError, match="unknown directory"):
            ProtocolConfig(protocol="neat", directory="ackwize")

    def test_valid_directory_normalized_to_none(self):
        assert ProtocolConfig(protocol="dls", directory="fullmap").directory == "none"

    def test_none_directory_requires_directoryless_protocol(self):
        with pytest.raises(ConfigError, match="requires a sharer-tracking directory"):
            ProtocolConfig(protocol="baseline", directory="none")

    def test_directoryless_configs_are_canonical(self):
        from repro.common.params import dls_protocol, neat_protocol

        assert ProtocolConfig(protocol="dls") == dls_protocol()
        assert ProtocolConfig(protocol="neat", pct=8, classifier="complete") == neat_protocol()

    def test_directoryless_normalization_still_validates_inputs(self):
        with pytest.raises(ConfigError, match="unknown classifier"):
            ProtocolConfig(protocol="dls", classifier="bogus")
        with pytest.raises(ConfigError, match="pct must be"):
            ProtocolConfig(protocol="neat", pct=0)

    def test_replaced_escapes_directoryless_family(self):
        from repro.common.params import dls_protocol

        proto = dls_protocol().replaced(protocol="adaptive", pct=4)
        assert proto.protocol == "adaptive"
        assert proto.directory == "ackwise"
        # An explicit choice still wins.
        full = dls_protocol().replaced(protocol="baseline", directory="fullmap")
        assert full.directory == "fullmap"
