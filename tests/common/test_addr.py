"""Address arithmetic unit tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import addr


def test_line_constants_consistent():
    assert addr.LINE_SIZE == 1 << addr.LINE_BITS
    assert addr.WORD_SIZE == 1 << addr.WORD_BITS
    assert addr.WORDS_PER_LINE == addr.LINE_SIZE // addr.WORD_SIZE


def test_line_of_basic():
    assert addr.line_of(0) == 0
    assert addr.line_of(63) == 0
    assert addr.line_of(64) == 1
    assert addr.line_of(128) == 2


def test_line_base():
    assert addr.line_base(0) == 0
    assert addr.line_base(65) == 64
    assert addr.line_base(127) == 64


def test_word_in_line_cycles():
    assert [addr.word_in_line(i * 8) for i in range(8)] == list(range(8))
    assert addr.word_in_line(64) == 0


def test_page_of_default():
    assert addr.page_of(0) == 0
    assert addr.page_of(4095) == 0
    assert addr.page_of(4096) == 1


def test_page_of_custom_size():
    assert addr.page_of(8192, page_size=8192) == 1
    assert addr.page_of(8191, page_size=8192) == 0


def test_align_up():
    assert addr.align_up(0, 64) == 0
    assert addr.align_up(1, 64) == 64
    assert addr.align_up(64, 64) == 64
    assert addr.align_up(65, 64) == 128


def test_align_up_rejects_nonpositive():
    with pytest.raises(ValueError):
        addr.align_up(10, 0)


def test_lines_in_page_covers_page():
    lines = list(addr.lines_in_page(0))
    assert len(lines) == 4096 // 64
    assert lines[0] == 0
    assert lines[-1] == 63
    assert list(addr.lines_in_page(1))[0] == 64


@given(st.integers(min_value=0, max_value=addr.MAX_ADDRESS))
def test_line_roundtrip(address):
    line = addr.line_of(address)
    base = addr.line_base(address)
    assert base == line * addr.LINE_SIZE
    assert base <= address < base + addr.LINE_SIZE


@given(st.integers(min_value=0, max_value=addr.MAX_ADDRESS))
def test_word_in_line_bounds(address):
    assert 0 <= addr.word_in_line(address) < addr.WORDS_PER_LINE


@given(st.integers(min_value=0, max_value=1 << 40), st.sampled_from([8, 64, 4096]))
def test_align_up_properties(value, alignment):
    aligned = addr.align_up(value, alignment)
    assert aligned >= value
    assert aligned % alignment == 0
    assert aligned - value < alignment
