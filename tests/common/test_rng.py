"""Deterministic RNG derivation tests."""

import pytest

from repro.common.rng import current_seed_salt, derive_seed, make_rng, seed_scope


def test_derive_seed_deterministic():
    assert derive_seed("radix", 3, "hist") == derive_seed("radix", 3, "hist")


def test_derive_seed_sensitive_to_parts():
    assert derive_seed("radix", 1) != derive_seed("radix", 2)
    assert derive_seed("a", "b") != derive_seed("ab")


def test_make_rng_reproducible_streams():
    a = [make_rng("x", 1).random() for _ in range(5)]
    b = [make_rng("x", 1).random() for _ in range(5)]
    assert a == b


def test_make_rng_distinct_streams():
    a = make_rng("x", 1).random()
    b = make_rng("x", 2).random()
    assert a != b


class TestSeedScope:
    def test_zero_salt_is_identity(self):
        unsalted = derive_seed("radix", 3)
        with seed_scope(0):
            assert derive_seed("radix", 3) == unsalted

    def test_salt_changes_every_derivation(self):
        unsalted = derive_seed("radix", 3)
        with seed_scope(7):
            assert derive_seed("radix", 3) != unsalted

    def test_distinct_salts_distinct_streams(self):
        with seed_scope(1):
            one = derive_seed("radix", 3)
        with seed_scope(2):
            two = derive_seed("radix", 3)
        assert one != two

    def test_scope_restores_on_exit_and_error(self):
        assert current_seed_salt() == 0
        with seed_scope(5):
            assert current_seed_salt() == 5
            with seed_scope(9):
                assert current_seed_salt() == 9
            assert current_seed_salt() == 5
        assert current_seed_salt() == 0
        with pytest.raises(RuntimeError):
            with seed_scope(3):
                raise RuntimeError("boom")
        assert current_seed_salt() == 0

    def test_salted_derivation_still_deterministic(self):
        with seed_scope(42):
            first = [make_rng("x", 1).random() for _ in range(3)]
        with seed_scope(42):
            second = [make_rng("x", 1).random() for _ in range(3)]
        assert first == second
