"""Deterministic RNG derivation tests."""

from repro.common.rng import derive_seed, make_rng


def test_derive_seed_deterministic():
    assert derive_seed("radix", 3, "hist") == derive_seed("radix", 3, "hist")


def test_derive_seed_sensitive_to_parts():
    assert derive_seed("radix", 1) != derive_seed("radix", 2)
    assert derive_seed("a", "b") != derive_seed("ab")


def test_make_rng_reproducible_streams():
    a = [make_rng("x", 1).random() for _ in range(5)]
    b = [make_rng("x", 1).random() for _ in range(5)]
    assert a == b


def test_make_rng_distinct_streams():
    a = make_rng("x", 1).random()
    b = make_rng("x", 2).random()
    assert a != b
