"""Statistics helper tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.statsutil import (
    UTILIZATION_BUCKETS,
    arithmetic_mean,
    bucket_percentages,
    geomean,
    normalize,
    safe_ratio,
    utilization_bucket,
)


def test_geomean_simple():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([1.0, 1.0, 1.0]) == pytest.approx(1.0)


def test_geomean_rejects_bad_input():
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])
    with pytest.raises(ValueError):
        geomean([1.0, -2.0])


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
def test_geomean_bounded_by_min_max(values):
    g = geomean(values)
    assert min(values) - 1e-9 <= g <= max(values) + 1e-9


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20),
       st.floats(min_value=0.1, max_value=10.0))
def test_geomean_scales_linearly(values, factor):
    scaled = geomean([v * factor for v in values])
    assert scaled == pytest.approx(geomean(values) * factor, rel=1e-9)


def test_arithmetic_mean():
    assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        arithmetic_mean([])


def test_normalize():
    assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
    with pytest.raises(ValueError):
        normalize([1.0], 0.0)


def test_utilization_bucket_boundaries():
    assert utilization_bucket(1) == "1"
    assert utilization_bucket(2) == "2-3"
    assert utilization_bucket(3) == "2-3"
    assert utilization_bucket(4) == "4-5"
    assert utilization_bucket(5) == "4-5"
    assert utilization_bucket(6) == "6-7"
    assert utilization_bucket(7) == "6-7"
    assert utilization_bucket(8) == ">=8"
    assert utilization_bucket(1000) == ">=8"


def test_utilization_bucket_rejects_zero():
    with pytest.raises(ValueError):
        utilization_bucket(0)


@given(st.integers(min_value=1, max_value=10_000))
def test_utilization_bucket_total_partition(value):
    assert utilization_bucket(value) in UTILIZATION_BUCKETS


def test_bucket_percentages_sum_to_100():
    counts = {"1": 10, "2-3": 30, "4-5": 20, "6-7": 25, ">=8": 15}
    pct = bucket_percentages(counts)
    assert sum(pct.values()) == pytest.approx(100.0)
    assert pct["2-3"] == pytest.approx(30.0)


def test_bucket_percentages_empty():
    assert all(v == 0.0 for v in bucket_percentages({}).values())


def test_safe_ratio():
    assert safe_ratio(4, 2) == 2.0
    assert safe_ratio(4, 0) == 0.0
    assert safe_ratio(4, 0, default=math.inf) == math.inf
