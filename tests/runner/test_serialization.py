"""RunStats (and nested stat types) must round-trip *exactly* through JSON."""

from __future__ import annotations

import json

import pytest

from repro.common.params import ArchConfig, EnergyConfig, ProtocolConfig
from repro.common.types import MissType
from repro.energy.model import EnergyBreakdown
from repro.experiments.harness import adaptive_protocol, bench_arch
from repro.runner.job import Job
from repro.runner.parallel import execute_job
from repro.sim.stats import LatencyBreakdown, MissStats, RunStats, UtilizationHistogram


def _json_round_trip(payload: dict) -> dict:
    return json.loads(json.dumps(payload))


class TestConfigRoundTrips:
    def test_arch_config(self):
        arch = bench_arch(16)
        assert ArchConfig.from_dict(_json_round_trip(arch.to_dict())) == arch

    def test_arch_config_non_default(self):
        arch = ArchConfig(
            num_cores=36, num_memory_controllers=6, ackwise_pointers=2,
            link_model="naive", hop_latency=3,
        )
        assert ArchConfig.from_dict(_json_round_trip(arch.to_dict())) == arch

    def test_protocol_config(self):
        for proto in (
            adaptive_protocol(7, classifier="complete"),
            ProtocolConfig(protocol="victim", pct=1),
            ProtocolConfig(remote_policy="timestamp", one_way=True),
        ):
            assert ProtocolConfig.from_dict(_json_round_trip(proto.to_dict())) == proto

    def test_energy_config(self):
        cfg = EnergyConfig(l2_word_read=9.875)
        assert EnergyConfig.from_dict(_json_round_trip(cfg.to_dict())) == cfg


class TestStatRoundTrips:
    def test_latency_breakdown(self):
        bd = LatencyBreakdown(compute=1.25, l2_waiting=0.1 + 0.2, sync=7.0)
        again = LatencyBreakdown.from_dict(_json_round_trip(bd.to_dict()))
        assert again == bd
        assert again.total == bd.total

    def test_miss_stats(self):
        miss = MissStats()
        miss.hits = 41
        miss.record_miss(MissType.COLD)
        miss.record_miss(MissType.COLD)
        miss.record_miss(MissType.SHARING)
        again = MissStats.from_dict(_json_round_trip(miss.to_dict()))
        assert again.hits == 41
        assert again.breakdown() == miss.breakdown()
        assert again.miss_rate == miss.miss_rate

    def test_utilization_histogram(self):
        hist = UtilizationHistogram()
        for utilization in (1, 2, 3, 9, 100):
            hist.record(utilization)
        again = UtilizationHistogram.from_dict(_json_round_trip(hist.to_dict()))
        assert again.counts == hist.counts

    def test_energy_breakdown(self):
        energy = EnergyBreakdown(l1i=1.5, link=2.25, router=0.3)
        again = EnergyBreakdown.from_dict(_json_round_trip(energy.to_dict()))
        assert again == energy


class TestRunStatsRoundTrip:
    @pytest.fixture(scope="class")
    def stats(self) -> RunStats:
        job = Job(
            workload="dijkstra-ss", proto=adaptive_protocol(4),
            arch=bench_arch(16), scale="tiny",
        )
        return execute_job(job)

    def test_bit_identical_through_json(self, stats):
        again = RunStats.from_dict(_json_round_trip(stats.to_dict()))
        assert json.dumps(again.to_dict(), sort_keys=True) == json.dumps(
            stats.to_dict(), sort_keys=True
        )

    def test_every_field_survives(self, stats):
        import dataclasses

        again = RunStats.from_dict(_json_round_trip(stats.to_dict()))
        for f in dataclasses.fields(RunStats):
            original = getattr(stats, f.name)
            loaded = getattr(again, f.name)
            if f.name in RunStats._COMPOSITE_FIELDS:
                continue
            assert loaded == original, f.name
        assert again.latency == stats.latency
        assert again.energy == stats.energy
        assert again.miss.to_dict() == stats.miss.to_dict()
        assert again.inval_histogram.counts == stats.inval_histogram.counts
        assert again.evict_histogram.counts == stats.evict_histogram.counts

    def test_simulation_produced_real_content(self, stats):
        # Guard against a vacuous round-trip of all-zero stats.
        assert stats.instructions > 0
        assert stats.miss.accesses > 0
        assert stats.energy.total > 0
        assert stats.inval_histogram.total + stats.evict_histogram.total > 0
