"""ParallelRunner: serial/parallel bit-identity, caching, worker isolation.

The parallel tests use the real ``spawn`` start method (the strictest one:
workers inherit nothing) with 2 workers, as the CI smoke sweep does.
"""

from __future__ import annotations

import json
import multiprocessing
import random

import pytest

from repro.common.params import baseline_protocol
from repro.experiments.harness import adaptive_protocol, bench_arch
from repro.runner.backends.local import run_task
from repro.runner.job import Job
from repro.runner.parallel import ParallelRunner, build_trace, execute_job
from repro.runner.store import ResultStore
from repro.sim.stats import RunStats


def _jobs() -> list[Job]:
    arch = bench_arch(16)
    return [
        Job(workload=name, proto=proto, arch=arch, scale="tiny")
        for name in ("tsp", "matmul")
        for proto in (baseline_protocol(), adaptive_protocol(4))
    ]


def _dumps(stats: RunStats) -> str:
    return json.dumps(stats.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def serial_results() -> list[RunStats]:
    return ParallelRunner(workers=1).run(_jobs())


class TestSerialPath:
    def test_results_align_with_jobs(self, serial_results):
        jobs = _jobs()
        assert len(serial_results) == len(jobs)
        for job, stats in zip(jobs, serial_results):
            assert stats.benchmark == job.workload
            assert stats.completion_time > 0

    def test_duplicate_jobs_share_one_simulation(self):
        job = _jobs()[0]
        runner = ParallelRunner(workers=1)
        first, second = runner.run([job, job])
        assert first is second
        assert runner.simulations == 1

    def test_matches_direct_execution(self, serial_results):
        direct = execute_job(_jobs()[0])
        assert _dumps(direct) == _dumps(serial_results[0])


class TestParallelPath:
    def test_two_workers_bit_identical_to_serial(self, serial_results):
        parallel = ParallelRunner(workers=2).run(_jobs())
        for a, b in zip(serial_results, parallel):
            assert _dumps(a) == _dumps(b)

    def test_progress_reports_every_job(self):
        seen = []
        runner = ParallelRunner(
            workers=2, progress=lambda done, total, job, source: seen.append((done, total, source))
        )
        runner.run(_jobs())
        assert len(seen) == len(_jobs())
        assert seen[-1][0] == seen[-1][1] == len(_jobs())
        assert all(source == "parallel" for _, _, source in seen)

    def test_cache_hit_progress_counts_increment(self, tmp_path):
        jobs = _jobs()
        ParallelRunner(store=ResultStore(tmp_path), workers=1).run(jobs)
        seen = []
        warm = ParallelRunner(
            store=ResultStore(tmp_path),
            progress=lambda done, total, job, source: seen.append((done, total, source)),
        )
        warm.run(jobs)
        assert [(d, t) for d, t, _ in seen] == [(i + 1, len(jobs)) for i in range(len(jobs))]
        assert all(source == "cache" for _, _, source in seen)


class TestCaching:
    def test_warm_cache_performs_zero_simulations(self, tmp_path, serial_results):
        jobs = _jobs()
        cold = ParallelRunner(store=ResultStore(tmp_path), workers=1)
        cold.run(jobs)
        assert cold.simulations == len(jobs)

        warm_store = ResultStore(tmp_path)
        warm = ParallelRunner(store=warm_store, workers=2)
        results = warm.run(jobs)
        assert warm.simulations == 0
        assert warm_store.hits == len(jobs)
        assert warm_store.misses == 0
        for a, b in zip(serial_results, results):
            assert _dumps(a) == _dumps(b)

    def test_config_change_misses_and_simulates(self, tmp_path):
        jobs = _jobs()
        ParallelRunner(store=ResultStore(tmp_path), workers=1).run(jobs)
        changed = [
            Job(workload=j.workload, proto=adaptive_protocol(2), arch=j.arch, scale=j.scale)
            for j in jobs[:1]
        ]
        runner = ParallelRunner(store=ResultStore(tmp_path), workers=1)
        runner.run(changed)
        assert runner.simulations == 1


# ----------------------------------------------------------------------
def _pollute_worker_state() -> None:
    """Pool initializer simulating a worker with dirty ambient RNG state."""
    random.seed(0xBAD)


class TestWorkerDeterminism:
    """Workers must derive all randomness from the job, never process state."""

    def test_worker_ignores_ambient_random_state(self, serial_results):
        job = _jobs()[0]
        context = multiprocessing.get_context("spawn")
        with context.Pool(1, initializer=_pollute_worker_state) as pool:
            key, payload = pool.apply(run_task, ((job.to_dict(), None),))
        assert key == job.key
        assert json.dumps(payload, sort_keys=True) == _dumps(serial_results[0])

    def test_parent_ambient_state_does_not_leak_into_traces(self):
        from repro.runner.backends import local as local_mod

        job = _jobs()[0]
        reference = build_trace(job).per_core
        local_mod._TRACE_CACHE.clear()  # force a genuine rebuild
        random.seed(1234)  # deliberately pollute the parent
        rebuilt = build_trace(
            Job(workload=job.workload, proto=job.proto, arch=job.arch, scale=job.scale)
        ).per_core
        assert rebuilt == reference

    def test_seed_variants_produce_different_traces(self):
        base = _jobs()[0]
        salted = Job(
            workload=base.workload, proto=base.proto, arch=base.arch,
            scale=base.scale, seed=1,
        )
        assert build_trace(base).per_core != build_trace(salted).per_core

    def test_seed_variants_deterministic_across_processes(self):
        job = Job(
            workload="tsp", proto=adaptive_protocol(4), arch=bench_arch(16),
            scale="tiny", seed=5,
        )
        local = execute_job(job)
        context = multiprocessing.get_context("spawn")
        with context.Pool(1, initializer=_pollute_worker_state) as pool:
            _, payload = pool.apply(run_task, ((job.to_dict(), None),))
        assert json.dumps(payload, sort_keys=True) == _dumps(local)


class TestVerifyTwinDedup:
    def test_collapsed_twins_execute_the_checked_one(self, tmp_path):
        from repro.experiments.harness import bench_arch
        from repro.common.params import neat_protocol
        from repro.runner.job import Job
        from repro.runner.store import ResultStore

        plain = Job(workload="tsp", proto=neat_protocol(), arch=bench_arch(16), scale="tiny")
        checked = Job(workload="tsp", proto=neat_protocol(), arch=bench_arch(16),
                      scale="tiny", verify=True)
        store = ResultStore(tmp_path)
        runner = ParallelRunner(store=store)
        a, b = runner.run([plain, checked])
        assert runner.simulations == 1  # twins collapse to one execution...
        assert a.to_dict() == b.to_dict()
        # ...and the execution was the verified one: the entry satisfies a
        # later verified lookup without re-simulation.
        assert ResultStore(tmp_path).get(checked) is not None


class TestZeroCopyTraceDistribution:
    """The parent ships the compiled columnar IR with each dispatched job."""

    def test_worker_adopts_shipped_trace(self, serial_results):
        from repro.runner.backends import local as local_mod

        job = _jobs()[0]
        trace = build_trace(job)
        local_mod._TRACE_CACHE.clear()
        context = multiprocessing.get_context("spawn")
        with context.Pool(1, initializer=_pollute_worker_state) as pool:
            key, payload = pool.apply(run_task, ((job.to_dict(), trace),))
        assert key == job.key
        assert json.dumps(payload, sort_keys=True) == _dumps(serial_results[0])

    def test_shipped_trace_pickles_as_buffers_not_tuples(self):
        import pickle

        job = _jobs()[0]
        trace = build_trace(job)
        blob = pickle.dumps((job.to_dict(), trace))
        # The payload must be within a small factor of the raw column bytes
        # (24 B/record) - a tuple-of-records pickle is several times larger.
        raw = 24 * trace.total_records
        assert len(blob) < raw * 1.2 + 4096

    def test_parallel_results_identical_with_trace_shipping(self, tmp_path, serial_results):
        jobs = _jobs()
        runner = ParallelRunner(store=ResultStore(tmp_path), workers=2)
        try:
            results = runner.run(jobs)
        finally:
            runner.close()
        for a, b in zip(serial_results, results):
            assert _dumps(a) == _dumps(b)


class TestRunnerLifecycle:
    """The runner is a context manager: the backend dies with the block."""

    def test_with_block_closes_pool(self):
        with ParallelRunner(workers=2) as runner:
            runner.run(_jobs()[:2])
            assert runner._backend is not None
            assert runner._backend._pool is not None
        assert runner._backend is None

    def test_close_after_error_is_safe_and_reusable(self):
        runner = ParallelRunner(workers=1)
        with pytest.raises(Exception):
            with runner:
                runner.run([Job(workload="tsp", proto=baseline_protocol(),
                                arch=bench_arch(16), scale="no-such-scale")])
        # close() ran via __exit__; the runner still works afterwards.
        stats = runner.run(_jobs()[:1])
        assert stats[0].completion_time > 0
        runner.close()


class TestBenchVerb:
    def test_bench_point_reports_throughput(self):
        from repro.runner.bench import bench_point

        row = bench_point("tsp", pct=4, cores=16, scale="tiny", repeats=1)
        assert row["records"] > 0
        assert row["build_records_per_second"] > 0
        assert row["simulate_records_per_second"] > 0

    def test_bench_cli_writes_json(self, tmp_path, capsys):
        from repro.runner.cli import main

        out = tmp_path / "bench.json"
        rc = main([
            "bench", "--workloads", "tsp", "--pct", "4", "--cores", "16",
            "--scale", "tiny", "--repeats", "1", "--json", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["points"][0]["workload"] == "tsp"
        assert report["points"][0]["simulate_records_per_second"] > 0
        assert "simulate rec/s" in capsys.readouterr().out
