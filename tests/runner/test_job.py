"""Job content hashing: canonical, stable, and sensitive to every field."""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.errors import ConfigError
from repro.common.params import ProtocolConfig, baseline_protocol
from repro.experiments.harness import adaptive_protocol, bench_arch
from repro.runner.job import JOB_SCHEMA, Job, canonical_json


def _job(**overrides) -> Job:
    params = dict(
        workload="tsp",
        proto=adaptive_protocol(4),
        arch=bench_arch(16),
        scale="tiny",
    )
    params.update(overrides)
    return Job(**params)


class TestHashing:
    def test_equal_content_equal_key(self):
        assert _job().key == _job().key

    def test_key_is_sha256_hex(self):
        key = _job().key
        assert len(key) == 64
        assert int(key, 16) >= 0

    def test_pct_changes_key(self):
        assert _job().key != _job(proto=adaptive_protocol(5)).key

    def test_ackwise_pointers_changes_key(self):
        other = dataclasses.replace(bench_arch(16), ackwise_pointers=2)
        assert _job().key != _job(arch=other).key

    def test_every_axis_changes_key(self):
        base = _job()
        variants = [
            _job(workload="matmul"),
            _job(proto=baseline_protocol()),
            _job(scale="small"),
            _job(warmup=False),
            _job(seed=1),
        ]
        keys = {base.key} | {v.key for v in variants}
        assert len(keys) == len(variants) + 1

    def test_default_arch_resolution_is_canonical(self):
        # memory_controller_tiles is filled by __post_init__; an explicitly
        # spelled-out equivalent config must hash identically.
        arch = bench_arch(16)
        explicit = dataclasses.replace(
            arch, memory_controller_tiles=arch.memory_controller_tiles
        )
        assert _job(arch=arch).key == _job(arch=explicit).key


class TestTraceKey:
    def test_protocol_does_not_affect_trace_key(self):
        assert _job().trace_key == _job(proto=baseline_protocol()).trace_key

    def test_arch_and_seed_affect_trace_key(self):
        assert _job().trace_key != _job(arch=bench_arch(64)).trace_key
        assert _job().trace_key != _job(seed=3).trace_key


class TestSerialization:
    def test_round_trip(self):
        job = _job(seed=9, warmup=False)
        again = Job.from_dict(job.to_dict())
        assert again == job
        assert again.key == job.key

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_schema_mismatch_rejected(self):
        payload = _job().to_dict()
        payload["schema"] = JOB_SCHEMA + 1
        with pytest.raises(ConfigError):
            Job.from_dict(payload)

    def test_validation(self):
        with pytest.raises(ConfigError):
            _job(workload="")
        with pytest.raises(ConfigError):
            _job(seed=-1)


class TestDescribe:
    def test_mentions_the_interesting_fields(self):
        text = _job(seed=2, warmup=False).describe()
        assert "tsp" in text and "pct=4" in text
        assert "seed=2" in text and "cold" in text

    def test_baseline_has_no_pct(self):
        assert "pct" not in _job(proto=baseline_protocol()).describe()


class TestVerifyTwin:
    """``verify`` is transport-only: same hash, same stats, checked run."""

    def test_verify_excluded_from_key_but_serialized(self):
        from repro.experiments.harness import adaptive_protocol, bench_arch

        plain = Job(workload="tsp", proto=adaptive_protocol(4), arch=bench_arch(16), scale="tiny")
        checked = Job(
            workload="tsp", proto=adaptive_protocol(4), arch=bench_arch(16),
            scale="tiny", verify=True,
        )
        assert plain.key == checked.key
        assert checked.to_dict()["verify"] is True
        assert Job.from_dict(checked.to_dict()).verify is True
        assert "verify" in checked.describe()
        assert "verify" not in plain.describe()

    def test_verified_run_produces_identical_stats(self):
        from repro.experiments.harness import bench_arch
        from repro.common.params import neat_protocol
        from repro.runner.parallel import execute_job

        plain = Job(workload="tsp", proto=neat_protocol(), arch=bench_arch(16), scale="tiny")
        checked = Job(
            workload="tsp", proto=neat_protocol(), arch=bench_arch(16),
            scale="tiny", verify=True,
        )
        assert execute_job(plain).to_dict() == execute_job(checked).to_dict()
