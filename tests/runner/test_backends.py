"""Backend conformance: one mixed batch, every backend, bit-identical stats.

The ``ExecutionBackend`` contract promises that serial, pooled and remote
executions of one job are byte-equal.  This suite runs the same mixed job
batch (two workloads x two protocol families, one seeded variant) through

* ``LocalBackend`` (the serial reference),
* ``ProcessBackend`` with 2 spawn workers,
* ``RemoteBackend`` against two loopback ``repro serve`` daemon processes,

and asserts identical ``RunStats`` serializations, plus the failure-path
semantics the remote backend guarantees: requeue of a crashed host's
outstanding jobs onto survivors, reconnect after a daemon restart, schema
refusal, and dead-cluster errors.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
from repro.common.errors import ConfigError, RunnerError
from repro.common.params import baseline_protocol
from repro.experiments.harness import adaptive_protocol, bench_arch
from repro.runner.backends import (
    LocalBackend,
    ProcessBackend,
    RemoteBackend,
    make_backend,
    parse_hosts,
    run_task,
)
from repro.runner.backends.remote import (
    JOB_SCHEMA,
    STATS_SCHEMA,
    WIRE_SCHEMA,
    encode_frame,
    fetch_stats,
)
from repro.runner.job import Job
from repro.runner.parallel import ParallelRunner


def _jobs() -> list[Job]:
    arch = bench_arch(16)
    jobs = [
        Job(workload=name, proto=proto, arch=arch, scale="tiny")
        for name in ("tsp", "matmul")
        for proto in (baseline_protocol(), adaptive_protocol(4))
    ]
    jobs.append(Job(workload="tsp", proto=baseline_protocol(), arch=arch,
                    scale="tiny", seed=3))
    return jobs


def _tasks(jobs):
    return [(job.to_dict(), None) for job in jobs]


def _canon(results: dict[str, dict]) -> dict[str, str]:
    return {key: json.dumps(stats, sort_keys=True) for key, stats in results.items()}


@pytest.fixture(scope="module")
def reference() -> dict[str, str]:
    """Serial reference results, keyed by job hash."""
    return _canon(dict(LocalBackend().run_batch(_tasks(_jobs()))))


# ----------------------------------------------------------------------
# Loopback daemons
# ----------------------------------------------------------------------
def _start_daemon(workers: int = 1, port: int = 0, cache: str | None = None):
    """Spawn ``repro serve`` as a subprocess; returns (proc, host, port)."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro.runner.cli", "serve",
           "--port", str(port), "--workers", str(workers)]
    if cache is not None:
        cmd += ["--cache", cache]
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env
    )
    for _ in range(50):
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        if match:
            return proc, match.group(1), int(match.group(2))
    proc.kill()
    raise AssertionError("daemon never announced readiness")


@pytest.fixture(scope="module")
def daemons():
    """Two loopback daemons, killed at module teardown."""
    started = [_start_daemon(workers=1), _start_daemon(workers=1)]
    try:
        yield [(host, port) for _, host, port in started]
    finally:
        for proc, _, _ in started:
            proc.kill()
            proc.wait()


# ----------------------------------------------------------------------
class TestConformance:
    def test_local_is_the_reference(self, reference):
        assert len(reference) == len(_jobs())

    def test_process_backend_matches_serial(self, reference):
        backend = ProcessBackend(workers=2)
        try:
            got = _canon(dict(backend.run_batch(_tasks(_jobs()))))
        finally:
            backend.close()
        assert got == reference

    def test_remote_backend_matches_serial(self, reference, daemons):
        backend = RemoteBackend(hosts=tuple(daemons), window=2)
        got = _canon(dict(backend.run_batch(_tasks(_jobs()))))
        assert got == reference

    def test_remote_through_runner_streams_and_orders(self, reference, daemons):
        seen = []
        backend = RemoteBackend(hosts=tuple(daemons), window=2)
        jobs = _jobs()
        with ParallelRunner(
            backend=backend,
            progress=lambda done, total, job, source: seen.append(source),
        ) as runner:
            results = runner.run(jobs)
        assert seen == ["remote"] * len(jobs)
        for job, stats in zip(jobs, results):
            assert json.dumps(stats.to_dict(), sort_keys=True) == reference[job.key]

    def test_single_task_process_batch_runs_inline(self, reference):
        backend = ProcessBackend(workers=2)
        job = _jobs()[0]
        got = dict(backend.run_batch([(job.to_dict(), None)]))
        assert backend.source == "serial"
        assert backend._pool is None  # no pool was spawned for one task
        assert _canon(got)[job.key] == reference[job.key]


class TestTaskShape:
    def test_bare_payload_dict_is_rejected(self):
        with pytest.raises(RunnerError, match="bare-payload"):
            run_task(_jobs()[0].to_dict())


class TestFactory:
    def test_auto_resolution(self):
        assert isinstance(make_backend("auto", workers=1), LocalBackend)
        assert isinstance(make_backend("auto", workers=4), ProcessBackend)
        assert isinstance(make_backend("auto", hosts="h:1"), RemoteBackend)

    def test_remote_requires_hosts(self):
        with pytest.raises(ConfigError):
            make_backend("remote")

    def test_hosts_reject_non_remote_backends(self):
        with pytest.raises(ConfigError):
            make_backend("process", workers=2, hosts="h:1")

    def test_parse_hosts(self):
        assert parse_hosts("a:1, b:2") == (("a", 1), ("b", 2))
        with pytest.raises(ConfigError):
            parse_hosts("no-port")
        with pytest.raises(ConfigError):
            parse_hosts("")


# ----------------------------------------------------------------------
# Failure-path semantics
# ----------------------------------------------------------------------
class _CrashingDaemon(threading.Thread):
    """A daemon that handshakes, swallows one run frame, then dies.

    First connection: completes the hello exchange, reads one ``run`` frame
    and drops the connection without replying (a daemon crash with a job in
    flight).  The listener then closes, so reconnection attempts fail and
    the client must declare this host dead after requeueing the job.
    """

    def __init__(self) -> None:
        super().__init__(daemon=True)
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.port = self.listener.getsockname()[1]
        self.saw_run_frame = threading.Event()

    def run(self) -> None:
        conn, _ = self.listener.accept()
        with conn:
            fh = conn.makefile("rwb")
            fh.readline()  # client hello
            fh.write(encode_frame({
                "type": "hello", "wire": WIRE_SCHEMA,
                "job_schema": JOB_SCHEMA, "workers": 1,
            }))
            fh.flush()
            if fh.readline():  # one run frame, never answered
                self.saw_run_frame.set()
        self.listener.close()


class _SilentDaemon(threading.Thread):
    """A wedged daemon: completes the handshake, then never replies."""

    def __init__(self) -> None:
        super().__init__(daemon=True)
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.port = self.listener.getsockname()[1]

    def run(self) -> None:
        conn, _ = self.listener.accept()
        with conn:
            fh = conn.makefile("rwb")
            fh.readline()  # client hello
            fh.write(encode_frame({
                "type": "hello", "wire": WIRE_SCHEMA,
                "job_schema": JOB_SCHEMA, "workers": 1,
            }))
            fh.flush()
            while fh.readline():  # swallow run frames until the client leaves
                pass
        self.listener.close()


class _MalformedDaemon(threading.Thread):
    """Handshakes correctly, then replies to the first run frame with junk."""

    def __init__(self) -> None:
        super().__init__(daemon=True)
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.port = self.listener.getsockname()[1]

    def run(self) -> None:
        conn, _ = self.listener.accept()
        with conn:
            fh = conn.makefile("rwb")
            fh.readline()
            fh.write(encode_frame({
                "type": "hello", "wire": WIRE_SCHEMA,
                "job_schema": JOB_SCHEMA, "workers": 1,
            }))
            fh.flush()
            frame = json.loads(fh.readline())
            fh.write(encode_frame({"type": "result", "id": frame["id"]}))  # no key/stats
            fh.flush()
            fh.readline()
        self.listener.close()


class TestRemoteFailureSemantics:
    def test_crashed_host_requeues_onto_survivor(self, reference, daemons):
        crasher = _CrashingDaemon()
        crasher.start()
        backend = RemoteBackend(
            hosts=(("127.0.0.1", crasher.port), daemons[0]),
            window=2, connect_retries=1, retry_delay=0.05,
        )
        got = _canon(dict(backend.run_batch(_tasks(_jobs()))))
        # The flaky host really held a job hostage, and the batch still
        # completed bit-identically via requeue on the survivor.
        assert crasher.saw_run_frame.wait(timeout=5)
        assert got == reference

    def test_daemon_restart_between_connect_retries(self, reference):
        proc, host, port = _start_daemon(workers=1)
        proc.kill()
        proc.wait()

        restarted = {}

        def bring_back() -> None:
            restarted["handle"] = _start_daemon(workers=1, port=port)

        reviver = threading.Timer(0.5, bring_back)
        reviver.start()
        backend = RemoteBackend(
            hosts=((host, port),), window=2,
            connect_retries=40, retry_delay=0.25,
        )
        try:
            job = _jobs()[0]
            got = _canon(dict(backend.run_batch([(job.to_dict(), None)])))
            assert got[job.key] == reference[job.key]
        finally:
            reviver.cancel()
            if "handle" in restarted:
                restarted["handle"][0].kill()
                restarted["handle"][0].wait()

    def test_abandoned_iterator_releases_the_dispatcher(self, daemons):
        """Breaking out of run_batch mid-stream must not hang on join().

        The silent host handshakes and then never answers, holding its
        window hostage: the dispatcher alone would wait on it forever, so
        only the consumer-abort poison lets ``close()`` return.
        """
        silent = _SilentDaemon()
        silent.start()
        backend = RemoteBackend(
            hosts=(("127.0.0.1", silent.port), daemons[0]), window=1
        )
        batch = backend.run_batch(_tasks(_jobs()))
        next(batch)  # at least one result arrives via the live daemon...
        closer = threading.Thread(target=batch.close, daemon=True)
        closer.start()  # ...then the consumer walks away mid-batch
        closer.join(timeout=15)
        assert not closer.is_alive(), "dispatcher failed to abort with the consumer"

    def test_malformed_result_frame_poisons_batch_instead_of_hanging(self):
        """A junk reply must surface as RunnerError, not a silent dead loop."""
        junk = _MalformedDaemon()
        junk.start()
        backend = RemoteBackend(hosts=(("127.0.0.1", junk.port),), window=1)
        with pytest.raises(RunnerError):
            list(backend.run_batch(_tasks(_jobs()[:1])))

    def test_all_hosts_dead_raises_runner_error(self):
        with socket.create_server(("127.0.0.1", 0)) as probe:
            free_port = probe.getsockname()[1]
        backend = RemoteBackend(
            hosts=(("127.0.0.1", free_port),),
            connect_retries=0, retry_delay=0.01,
        )
        with pytest.raises(RunnerError, match="hosts failed"):
            list(backend.run_batch(_tasks(_jobs()[:1])))

    def test_schema_mismatch_is_refused(self, daemons):
        async def bad_hello() -> dict:
            reader, writer = await asyncio.open_connection(*daemons[0])
            writer.write(encode_frame({
                "type": "hello", "wire": WIRE_SCHEMA, "job_schema": -1,
            }))
            await writer.drain()
            line = await reader.readline()
            writer.close()
            return json.loads(line)

        reply = asyncio.run(bad_hello())
        assert reply["type"] == "error"
        assert "schema mismatch" in reply["message"]


class TestInProcessDaemon:
    """Drive a ``Daemon`` through the library API (no subprocess)."""

    @pytest.fixture()
    def daemon(self):
        from repro.runner.backends import Daemon

        daemon = Daemon(workers=1)
        ready = threading.Event()
        bound: dict = {}

        def serve() -> None:
            async def main() -> None:
                bound["loop"] = asyncio.get_running_loop()

                def _ready(host: str, port: int) -> None:
                    bound["address"] = (host, port)
                    ready.set()

                await daemon.serve("127.0.0.1", 0, _ready)

            try:
                asyncio.run(main())
            except Exception:
                pass  # loop.stop() teardown races are not the test's concern

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert ready.wait(timeout=5)
        try:
            yield bound["address"]
        finally:
            bound["loop"].call_soon_threadsafe(bound["loop"].stop)
            thread.join(timeout=5)
            daemon.close()

    def test_served_results_match_reference(self, daemon, reference):
        backend = RemoteBackend(hosts=(daemon,), window=2)
        jobs = _jobs()[:2]
        got = _canon(dict(backend.run_batch(_tasks(jobs))))
        for job in jobs:
            assert got[job.key] == reference[job.key]

    def test_remote_job_failure_poisons_batch(self, daemon):
        payload = _jobs()[0].to_dict()
        payload["workload"] = "no-such-workload"
        backend = RemoteBackend(hosts=(daemon,))
        with pytest.raises(RunnerError, match="remote job failed"):
            list(backend.run_batch([(payload, None)]))


class TestServerSideStore:
    def test_daemon_persists_results_mergeable_into_client_cache(self, tmp_path, reference):
        from repro.runner.store import ResultStore

        server_cache = tmp_path / "server-cache"
        proc, host, port = _start_daemon(workers=1, cache=str(server_cache))
        try:
            backend = RemoteBackend(hosts=((host, port),), window=2)
            jobs = _jobs()[:2]
            dict(backend.run_batch(_tasks(jobs)))
        finally:
            proc.kill()
            proc.wait()
        # The daemon's store captured the runs; merging folds them locally.
        local = ResultStore(tmp_path / "client-cache")
        merged, skipped = local.merge(server_cache)
        assert (merged, skipped) == (2, 0)
        for job in jobs:
            stats = local.get(job)
            assert json.dumps(stats.to_dict(), sort_keys=True) == reference[job.key]


# ----------------------------------------------------------------------
class TestStatsFrame:
    """The daemon introspection frame: ``repro serve-stats`` wire contract."""

    def test_stats_frame_round_trips(self, daemons):
        host, port = daemons[0]
        stats = fetch_stats(host, port)
        assert stats["type"] == "stats"
        assert stats["stats_schema"] == STATS_SCHEMA
        assert stats["wire"] == WIRE_SCHEMA
        assert stats["job_schema"] == JOB_SCHEMA
        assert stats["workers"] == 1
        assert stats["caching"] is False
        assert stats["uptime_s"] >= 0
        assert stats["active_jobs"] == 0
        # The stats query itself is a live connection.
        assert stats["connections"] >= 1
        assert stats["total_connections"] >= stats["connections"]

    def test_served_count_advances_with_work(self, daemons):
        host, port = daemons[0]
        before = fetch_stats(host, port)["served"]
        backend = RemoteBackend(hosts=((host, port),), window=2)
        results = dict(backend.run_batch(_tasks(_jobs()[:2])))
        assert len(results) == 2
        after = fetch_stats(host, port)
        assert after["served"] >= before + 2
        assert after["errors"] == 0  # valid jobs only in this module

    def test_dead_host_raises(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(OSError):
            fetch_stats("127.0.0.1", free_port, timeout=2.0)


# ----------------------------------------------------------------------
class TestReconnectBackoff:
    """Capped exponential backoff with deterministic per-host jitter."""

    def _backend(self, **kw) -> RemoteBackend:
        defaults = dict(hosts=(("h", 1),), retry_delay=0.2, retry_max_delay=5.0)
        defaults.update(kw)
        return RemoteBackend(**defaults)

    def test_delays_are_deterministic_and_capped(self):
        backend = self._backend()
        delays = [backend._backoff_delay("h:1", n) for n in range(1, 12)]
        assert delays == [backend._backoff_delay("h:1", n) for n in range(1, 12)]
        for attempt, delay in enumerate(delays, start=1):
            base = min(0.2 * 2 ** (attempt - 1), 5.0)
            assert 0.5 * base <= delay < base  # jitter lands in [0.5, 1.0) x base
        # The old linear `attempts * retry_delay` grew without bound; the
        # cap pins a long outage to a steady polling cadence instead.
        assert self._backend()._backoff_delay("h:1", 1000) < 5.0

    def test_hosts_desynchronize(self):
        backend = self._backend()
        a = [backend._backoff_delay("hostA:1", n) for n in range(4, 8)]
        b = [backend._backoff_delay("hostB:1", n) for n in range(4, 8)]
        assert a != b

    def test_timeout_and_backoff_validation(self):
        with pytest.raises(ConfigError, match="retry_delay"):
            self._backend(retry_delay=0)
        with pytest.raises(ConfigError, match="retry_max_delay"):
            self._backend(retry_delay=1.0, retry_max_delay=0.5)
        with pytest.raises(ConfigError, match="frame_timeout"):
            self._backend(frame_timeout=0)

    def test_fake_clock_pins_the_reconnect_schedule(self, monkeypatch):
        """The sleeps a dead host actually costs are exactly the documented
        schedule - recorded via a patched (fake-clock) asyncio.sleep."""
        with socket.create_server(("127.0.0.1", 0)) as probe:
            free_port = probe.getsockname()[1]
        backend = RemoteBackend(
            hosts=(("127.0.0.1", free_port),),
            connect_retries=3, retry_delay=0.2, retry_max_delay=1.0,
        )
        recorded: list[float] = []
        real_sleep = asyncio.sleep

        async def fake_sleep(delay, *args, **kwargs):
            recorded.append(delay)
            return await real_sleep(0)

        monkeypatch.setattr(asyncio, "sleep", fake_sleep)
        with pytest.raises(RunnerError, match="hosts failed"):
            list(backend.run_batch(_tasks(_jobs()[:1])))
        name = f"127.0.0.1:{free_port}"
        assert recorded == [backend._backoff_delay(name, n) for n in (1, 2, 3)]


# ----------------------------------------------------------------------
class TestGracefulDrain:
    """SIGTERM drains the daemon: no torn frames, a clean EOF, a shutdown line."""

    def test_sigterm_after_serving_announces_drained(self, reference):
        proc, host, port = _start_daemon(workers=1)
        try:
            backend = RemoteBackend(hosts=((host, port),), window=2)
            got = _canon(dict(backend.run_batch(_tasks(_jobs()[:2]))))
            for key, canon in got.items():
                assert canon == reference[key]
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=15)
            assert proc.returncode == 0
            assert "drained, stopped after 2 results" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_sigterm_with_open_connection_is_a_clean_eof(self):
        proc, host, port = _start_daemon(workers=1)
        try:
            with socket.create_connection((host, port), timeout=10) as sock:
                fh = sock.makefile("rwb")
                fh.write(encode_frame({
                    "type": "hello", "wire": WIRE_SCHEMA, "job_schema": JOB_SCHEMA,
                }))
                fh.flush()
                assert json.loads(fh.readline())["type"] == "hello"
                proc.send_signal(signal.SIGTERM)
                # The drain stops reading and closes cleanly: EOF, not a
                # mid-frame reset the client would classify as a crash.
                assert fh.readline() == b""
            out, _ = proc.communicate(timeout=15)
            assert proc.returncode == 0
            assert "drained" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_request_drain_is_thread_safe_and_returns_serve(self):
        from repro.runner.backends import Daemon

        daemon = Daemon(workers=1)
        ready = threading.Event()
        finished = threading.Event()

        def serve() -> None:
            asyncio.run(daemon.serve("127.0.0.1", 0, lambda h, p: ready.set()))
            finished.set()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert ready.wait(timeout=5)
        daemon.request_drain()  # from a foreign thread, no signal involved
        assert finished.wait(timeout=5), "serve() did not return on drain"
        assert daemon.drained
        thread.join(timeout=5)
        daemon.close()

    def test_request_drain_before_serve_is_a_noop(self):
        from repro.runner.backends import Daemon

        daemon = Daemon(workers=1)
        daemon.request_drain()  # nothing bound yet: must not raise
        assert not daemon.drained
        daemon.close()
