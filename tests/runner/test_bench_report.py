"""``repro bench`` report provenance and ``--baseline`` diffing."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigError
from repro.runner.bench import format_baseline_diff, format_report, load_baseline
from repro.runner.cli import main as cli_main


def report(impl: str, simulate: int, *, extra_point: bool = False) -> dict:
    points = [
        {
            "workload": "tsp",
            "family": "pct",
            "pct": 4,
            "cores": 16,
            "scale": "tiny",
            "records": 1000,
            "build_records_per_second": 1_000_000,
            "simulate_records_per_second": simulate,
        }
    ]
    if extra_point:
        points.append(dict(points[0], workload="radix"))
    return {
        "schema": 3,
        "metric": "records/second",
        "implementation": impl,
        "accel": {
            "compiled": impl == "accel",
            "compiler": "cc (test)" if impl == "accel" else None,
            "reason": None if impl == "accel" else "forced off",
        },
        "points": points,
    }


class TestReportStamp:
    def test_format_report_leads_with_implementation(self):
        text = format_report(report("accel", 100_000))
        assert text.splitlines()[0] == "mesh implementation: accel (cc (test))"
        text = format_report(report("fallback", 100_000))
        assert text.splitlines()[0] == "mesh implementation: fallback (forced off)"

    def test_legacy_report_formats_without_stamp(self):
        legacy = report("accel", 100_000)
        del legacy["implementation"]
        assert format_report(legacy).startswith("workload")

    def test_live_bench_report_carries_provenance(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = cli_main(
            ["bench", "--workloads", "tsp", "--pct", "1", "--cores", "16",
             "--scale", "tiny", "--repeats", "1", "--json", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == 4
        assert payload["implementation"] in ("accel", "fallback")
        assert set(payload["implementations"]) == {"mesh", "sched"}
        assert all(
            impl in ("accel", "fallback")
            for impl in payload["implementations"].values()
        )
        assert set(payload["accel"]) == {"compiled", "compiler", "reason", "kernels"}
        assert set(payload["accel"]["kernels"]) == {"mesh", "sched"}
        stdout = capsys.readouterr().out
        assert "mesh implementation:" in stdout
        assert "sched implementation:" in stdout


class TestAccelInfo:
    def test_text_output_names_both_kernels(self, capsys):
        assert cli_main(["accel-info"]) == 0
        out = capsys.readouterr().out
        assert "mesh:" in out
        assert "sched:" in out
        assert "cache dir:" in out

    def test_json_output_is_the_status_payload(self, capsys):
        assert cli_main(["accel-info", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["implementation"] in ("accel", "fallback")
        assert {"compiled", "cache_dir", "reason", "source"} <= set(payload)
        assert set(payload["kernels"]) == {"mesh", "sched"}

    def test_require_compiled_fails_under_no_accel(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_NO_ACCEL", "1")
        assert cli_main(["accel-info", "--require-compiled"]) == 1
        err = capsys.readouterr().err
        # The bare flag requires both kernels, so both are reported.
        assert "compiled mesh kernel required" in err
        assert "compiled sched kernel required" in err

    def test_require_compiled_named_kernel(self, monkeypatch, capsys):
        # Only the sched kernel is disabled: requiring mesh alone passes
        # (when a compiler exists), requiring sched fails.
        from repro.accel import build

        if build.find_compiler() is None:
            pytest.skip("no C compiler on this host")
        monkeypatch.setenv("REPRO_NO_ACCEL_SCHED", "1")
        assert cli_main(["accel-info", "--require-compiled", "mesh"]) == 0
        capsys.readouterr()
        assert cli_main(["accel-info", "--require-compiled", "sched"]) == 1
        assert "compiled sched kernel required" in capsys.readouterr().err

    def test_require_compiled_unknown_kernel_rejected(self, capsys):
        assert cli_main(["accel-info", "--require-compiled", "gpu"]) == 2
        assert "unknown kernel" in capsys.readouterr().err


class TestBaselineDiff:
    def test_speedup_ratios_per_point(self):
        text = format_baseline_diff(
            report("accel", 100_000), report("accel", 250_000)
        )
        assert "2.50x" in text
        assert "WARNING" not in text

    def test_implementation_mismatch_warns(self):
        text = format_baseline_diff(
            report("fallback", 100_000), report("accel", 200_000)
        )
        assert "WARNING: implementations differ" in text

    def test_asymmetric_points_are_marked(self):
        base = report("accel", 100_000)
        fresh = report("accel", 100_000, extra_point=True)
        text = format_baseline_diff(base, fresh)
        assert "(not in baseline)" in text
        text = format_baseline_diff(fresh, base)
        assert "(baseline only, not re-run)" in text

    def test_load_baseline_rejects_non_bench(self, tmp_path):
        bad = tmp_path / "not_bench.json"
        bad.write_text(json.dumps({"rows": []}), encoding="utf-8")
        with pytest.raises(ConfigError, match="not a bench report"):
            load_baseline(str(bad))
        with pytest.raises(ConfigError, match="cannot read"):
            load_baseline(str(tmp_path / "missing.json"))

    def test_cli_baseline_prints_diff(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(report("fallback", 50)), encoding="utf-8")
        code = cli_main(
            ["bench", "--workloads", "tsp", "--pct", "4", "--cores", "16",
             "--scale", "tiny", "--repeats", "1", "--baseline", str(baseline)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline implementation: mesh=fallback" in out
        assert "fresh sim rec/s" in out

    def test_cli_bad_baseline_fails_before_benching(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        code = cli_main(
            ["bench", "--workloads", "tsp", "--cores", "16", "--scale", "tiny",
             "--baseline", str(missing)]
        )
        assert code == 1
        assert "cannot read" in capsys.readouterr().err
