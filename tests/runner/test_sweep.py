"""SweepGrid expansion semantics and the ``repro sweep``/``cache`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigError
from repro.experiments.harness import bench_arch
from repro.runner.cli import main as cli_main
from repro.runner.sweep import FIGURE11_PCTS, SweepGrid, sweep_rows, sweep_table


class TestSweepGrid:
    def test_default_grid_is_figure11(self):
        grid = SweepGrid()
        assert grid.pcts == FIGURE11_PCTS
        assert len(grid.jobs()) == 21 * len(FIGURE11_PCTS)

    def test_pct_family_treats_one_as_baseline(self):
        grid = SweepGrid(workloads=("tsp",), pcts=(1, 4), arch=bench_arch(16))
        protos = grid.protocols()
        assert [p.protocol for p in protos] == ["baseline", "adaptive"]
        assert protos[1].pct == 4

    def test_adaptive_family_forces_adaptive_at_pct_one(self):
        grid = SweepGrid(
            workloads=("tsp",), families=("adaptive",), pcts=(1, 4), arch=bench_arch(16)
        )
        assert [p.protocol for p in grid.protocols()] == ["adaptive", "adaptive"]

    def test_families_deduplicate(self):
        grid = SweepGrid(
            workloads=("tsp",), families=("pct", "baseline"), pcts=(1, 4),
            arch=bench_arch(16),
        )
        # "baseline" repeats the pct=1 point of the "pct" family.
        assert len(grid.protocols()) == 2

    def test_rat_max_follows_large_pct(self):
        grid = SweepGrid(workloads=("tsp",), pcts=(20,), arch=bench_arch(16))
        assert grid.protocols()[0].rat_max == 20

    def test_victim_family(self):
        grid = SweepGrid(
            workloads=("tsp",), families=("victim",), pcts=(1,), arch=bench_arch(16)
        )
        assert [p.protocol for p in grid.protocols()] == ["victim"]

    def test_validation(self):
        with pytest.raises(ConfigError):
            SweepGrid(workloads=("nope",))
        with pytest.raises(ConfigError):
            SweepGrid(families=("nope",))
        with pytest.raises(ConfigError):
            SweepGrid(pcts=())

    def test_describe_counts_jobs(self):
        grid = SweepGrid(workloads=("tsp", "matmul"), pcts=(1, 4), arch=bench_arch(16))
        assert "= 4 jobs" in grid.describe()


class TestRendering:
    def test_rows_and_table(self):
        grid = SweepGrid(workloads=("tsp",), pcts=(1,), arch=bench_arch(16), scale="tiny")
        from repro.runner.parallel import ParallelRunner

        jobs = grid.jobs()
        rows = sweep_rows(jobs, ParallelRunner().run(jobs))
        assert rows[0]["workload"] == "tsp"
        assert rows[0]["completion_time"] > 0
        text = sweep_table(rows)
        assert "tsp" in text and "baseline" in text


class TestSweepCli:
    ARGS = [
        "sweep", "--workloads", "tsp", "--pct", "1", "4", "--cores", "16",
        "--scale", "tiny", "--quiet",
    ]

    def test_cold_then_warm_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        cold_json = tmp_path / "cold.json"
        warm_json = tmp_path / "warm.json"
        assert cli_main(self.ARGS + ["--cache", cache, "--json", str(cold_json)]) == 0
        cold_err = capsys.readouterr().err
        assert "2 simulated" in cold_err

        assert cli_main(self.ARGS + ["--cache", cache, "--json", str(warm_json)]) == 0
        warm_err = capsys.readouterr().err
        assert "0 simulated" in warm_err
        assert json.loads(cold_json.read_text()) == json.loads(warm_json.read_text())

    def test_table_output(self, tmp_path, capsys):
        assert cli_main(self.ARGS + ["--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "workload" in out and "tsp" in out

    def test_unknown_workload_rejected(self, tmp_path, capsys):
        assert cli_main(["sweep", "--workloads", "nope", "--no-cache"]) == 1
        assert "unknown workloads" in capsys.readouterr().err

    def test_pct_below_one_rejected(self, capsys):
        assert cli_main(["sweep", "--workloads", "tsp", "--pct", "0", "--no-cache"]) == 1
        assert "must be >= 1" in capsys.readouterr().err

    def test_figures_delegation_forwards_leading_optionals(self, capsys):
        # Regression: argparse REMAINDER dropped "--figure 11"-style args.
        assert cli_main(["figures", "--list"]) == 0
        out = capsys.readouterr().out
        assert "figures" in out and "workloads" in out

    def test_trace_delegation(self, tmp_path, capsys):
        out_file = tmp_path / "t.traceb"
        assert cli_main(
            ["trace", "generate", "tsp", str(out_file), "--scale", "tiny", "--cores", "16"]
        ) == 0
        assert out_file.exists()

    def test_cache_info_and_clear(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert cli_main(self.ARGS + ["--cache", cache, "--json", "-"]) == 0
        capsys.readouterr()
        assert cli_main(["cache", "info", "--cache", cache]) == 0
        info = capsys.readouterr().out
        assert "2 results" in info and "tsp" in info
        assert cli_main(["cache", "clear", "--cache", cache]) == 0
        assert "cleared 2" in capsys.readouterr().out


class TestComparisonFamilies:
    def test_dls_and_neat_families(self):
        grid = SweepGrid(
            workloads=("tsp",), families=("dls", "neat"), pcts=(1,),
            arch=bench_arch(16),
        )
        protos = grid.protocols()
        assert [p.protocol for p in protos] == ["dls", "neat"]
        assert all(p.directory == "none" for p in protos)

    def test_families_have_no_pct_axis(self):
        # dls/neat are single grid points: the PCT axis must not multiply them.
        grid = SweepGrid(
            workloads=("tsp",), families=("dls", "neat"), pcts=(1, 4, 8),
            arch=bench_arch(16),
        )
        assert len(grid.protocols()) == 2

    def test_six_way_grid_expands(self):
        grid = SweepGrid(
            workloads=("tsp",),
            families=("baseline", "victim", "dls", "neat", "phase", "adaptive"),
            pcts=(4,), arch=bench_arch(16),
        )
        assert [p.protocol for p in grid.protocols()] == [
            "baseline", "victim", "dls", "neat", "phase", "adaptive",
        ]

    def test_phase_family_is_a_single_directory_point(self):
        grid = SweepGrid(
            workloads=("tsp",), families=("phase",), pcts=(1, 4, 8),
            arch=bench_arch(16),
        )
        protos = grid.protocols()
        assert len(protos) == 1  # no PCT axis
        assert protos[0].protocol == "phase"
        assert protos[0].directory != "none"

    def test_cli_accepts_new_families(self, tmp_path, capsys):
        out = tmp_path / "rows.json"
        code = cli_main([
            "sweep", "--workloads", "tsp", "--pct", "1", "--protocols", "dls", "neat",
            "--cores", "16", "--scale", "tiny", "--no-cache", "--quiet",
            "--json", str(out),
        ])
        assert code == 0
        rows = json.loads(out.read_text())
        assert [r["protocol"] for r in rows] == ["dls", "neat"]
        assert rows[0]["l1d_miss_rate"] == 1.0  # DLS never caches

    def test_six_way_verified_sweep_acceptance(self, tmp_path, capsys):
        """Acceptance: a grid with all six protocols completes under
        golden-verify (any coherence violation would abort the run)."""
        out = tmp_path / "rows.json"
        code = cli_main([
            "sweep", "--workloads", "tsp", "--pct", "4",
            "--protocols", "pct", "baseline", "victim", "dls", "neat", "phase",
            "--verify", "--cores", "16", "--scale", "tiny",
            "--no-cache", "--quiet", "--json", str(out),
        ])
        assert code == 0
        rows = json.loads(out.read_text())
        assert sorted({r["protocol"] for r in rows}) == [
            "adaptive", "baseline", "dls", "neat", "phase", "victim",
        ]
