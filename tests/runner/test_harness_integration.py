"""The rewired ExperimentRunner: parallel + cached figure paths stay exact."""

from __future__ import annotations

import json

import pytest

from repro.experiments.figures import figure11_geomean_sweep
from repro.experiments.harness import ExperimentRunner, bench_arch, protocol_for_pct
from repro.runner.store import ResultStore

WORKLOADS = ("tsp", "matmul")
PCTS = (1, 2, 4)


def _runner(**overrides) -> ExperimentRunner:
    params = dict(arch=bench_arch(16), scale="tiny", workloads=WORKLOADS)
    params.update(overrides)
    return ExperimentRunner(**params)


@pytest.fixture(scope="module")
def serial_runner() -> ExperimentRunner:
    runner = _runner()
    runner.prefetch((n, protocol_for_pct(p)) for n in WORKLOADS for p in PCTS)
    return runner


class TestParallelHarness:
    def test_workers_two_matches_serial(self, serial_runner):
        parallel = _runner(workers=2)
        parallel.prefetch((n, protocol_for_pct(p)) for n in WORKLOADS for p in PCTS)
        for name in WORKLOADS:
            for pct in PCTS:
                a = serial_runner.run(name, protocol_for_pct(pct))
                b = parallel.run(name, protocol_for_pct(pct))
                assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
                    b.to_dict(), sort_keys=True
                )

    def test_figure11_identical_serial_vs_parallel(self, serial_runner):
        parallel = _runner(workers=2)
        a = figure11_geomean_sweep(serial_runner, pcts=PCTS)
        b = figure11_geomean_sweep(parallel, pcts=PCTS)
        assert a.data == b.data
        assert a.text == b.text

    def test_pct_sweep_batches_in_one_submission(self, serial_runner):
        sweep = serial_runner.pct_sweep("tsp", PCTS)
        assert set(sweep) == set(PCTS)
        for pct, stats in sweep.items():
            assert stats is serial_runner.run("tsp", protocol_for_pct(pct))


class TestStoreBackedHarness:
    def test_warm_store_runs_zero_simulations(self, tmp_path, serial_runner):
        cold = _runner(store=ResultStore(tmp_path))
        figure11_geomean_sweep(cold, pcts=PCTS)
        assert cold.simulations == len(WORKLOADS) * len(PCTS)

        warm_store = ResultStore(tmp_path)
        warm = _runner(workers=2, store=warm_store)
        result = figure11_geomean_sweep(warm, pcts=PCTS)
        assert warm.simulations == 0
        assert warm_store.misses == 0
        assert warm_store.hits == len(WORKLOADS) * len(PCTS)
        assert result.data == figure11_geomean_sweep(serial_runner, pcts=PCTS).data
