"""ResultStore: exact round-trips, hit/miss accounting, durability."""

from __future__ import annotations

import json

import pytest

from repro.experiments.harness import adaptive_protocol, bench_arch
from repro.runner.job import Job
from repro.runner.parallel import execute_job
from repro.runner.store import ResultStore


@pytest.fixture(scope="module")
def job() -> Job:
    return Job(workload="tsp", proto=adaptive_protocol(4), arch=bench_arch(16), scale="tiny")


@pytest.fixture(scope="module")
def stats(job):
    return execute_job(job)


class TestRoundTrip:
    def test_get_returns_bit_identical_stats(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        loaded = store.get(job)
        assert loaded is not stats
        assert json.dumps(loaded.to_dict(), sort_keys=True) == json.dumps(
            stats.to_dict(), sort_keys=True
        )
        assert loaded.completion_time == stats.completion_time
        assert loaded.energy == stats.energy
        assert loaded.latency.total == stats.latency.total
        assert loaded.miss.breakdown() == stats.miss.breakdown()
        assert loaded.inval_histogram.counts == stats.inval_histogram.counts

    def test_survives_reopen(self, tmp_path, job, stats):
        ResultStore(tmp_path).put(job, stats)
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 1
        assert job in reopened
        assert reopened.get(job).to_dict() == stats.to_dict()

    def test_config_change_misses(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        other = Job(
            workload=job.workload,
            proto=adaptive_protocol(5),
            arch=job.arch,
            scale=job.scale,
        )
        assert store.get(other) is None


class TestCounters:
    def test_hits_misses_stores(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        assert store.get(job) is None
        assert (store.hits, store.misses, store.stores) == (0, 1, 0)
        store.put(job, stats)
        assert store.stores == 1
        assert store.get(job) is not None
        assert (store.hits, store.misses) == (1, 1)


class TestRobustness:
    def test_torn_and_alien_lines_ignored(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write('{"truncated": \n')
            fh.write(json.dumps({"schema": 9999, "key": "x", "stats": {}}) + "\n")
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 1

    def test_last_write_wins(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        doctored = stats.to_dict()
        doctored["instructions"] += 1
        store.put(job, doctored)
        reopened = ResultStore(tmp_path)
        assert reopened.get(job).instructions == stats.instructions + 1

    def test_clear(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        assert store.clear() == 1
        assert len(store) == 0
        assert not store.path.exists()
        assert ResultStore(tmp_path).get(job) is None

    def test_describe_mentions_counts(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        assert "1 results" in store.describe()
