"""ResultStore: exact round-trips, hit/miss accounting, durability."""

from __future__ import annotations

import json

import pytest

from repro.experiments.harness import adaptive_protocol, bench_arch
from repro.runner.job import Job
from repro.runner.parallel import execute_job
from repro.runner.store import ResultStore


@pytest.fixture(scope="module")
def job() -> Job:
    return Job(workload="tsp", proto=adaptive_protocol(4), arch=bench_arch(16), scale="tiny")


@pytest.fixture(scope="module")
def stats(job):
    return execute_job(job)


class TestRoundTrip:
    def test_get_returns_bit_identical_stats(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        loaded = store.get(job)
        assert loaded is not stats
        assert json.dumps(loaded.to_dict(), sort_keys=True) == json.dumps(
            stats.to_dict(), sort_keys=True
        )
        assert loaded.completion_time == stats.completion_time
        assert loaded.energy == stats.energy
        assert loaded.latency.total == stats.latency.total
        assert loaded.miss.breakdown() == stats.miss.breakdown()
        assert loaded.inval_histogram.counts == stats.inval_histogram.counts

    def test_survives_reopen(self, tmp_path, job, stats):
        ResultStore(tmp_path).put(job, stats)
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 1
        assert job in reopened
        assert reopened.get(job).to_dict() == stats.to_dict()

    def test_config_change_misses(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        other = Job(
            workload=job.workload,
            proto=adaptive_protocol(5),
            arch=job.arch,
            scale=job.scale,
        )
        assert store.get(other) is None


class TestCounters:
    def test_hits_misses_stores(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        assert store.get(job) is None
        assert (store.hits, store.misses, store.stores) == (0, 1, 0)
        store.put(job, stats)
        assert store.stores == 1
        assert store.get(job) is not None
        assert (store.hits, store.misses) == (1, 1)


class TestRobustness:
    def test_torn_and_alien_lines_ignored(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write('{"truncated": \n')
            fh.write(json.dumps({"schema": 9999, "key": "x", "stats": {}}) + "\n")
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 1

    def test_last_write_wins(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        doctored = stats.to_dict()
        doctored["instructions"] += 1
        store.put(job, doctored)
        reopened = ResultStore(tmp_path)
        assert reopened.get(job).instructions == stats.instructions + 1

    def test_clear(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        assert store.clear() == 1
        assert len(store) == 0
        assert not store.path.exists()
        assert ResultStore(tmp_path).get(job) is None

    def test_describe_mentions_counts(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        assert "1 results" in store.describe()


class TestCompact:
    def _line_count(self, store):
        with store.path.open("r", encoding="utf-8") as fh:
            return sum(1 for line in fh if line.strip())

    def test_compact_drops_superseded_and_alien_lines(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        doctored = stats.to_dict()
        doctored["instructions"] += 1
        store.put(job, doctored)  # supersedes the first line
        with store.path.open("a", encoding="utf-8") as fh:
            fh.write('{"truncated": \n')  # torn write
            fh.write(json.dumps({"schema": 9999, "key": "x", "stats": {}}) + "\n")
        store = ResultStore(tmp_path)  # load ignores all three junk lines
        assert self._line_count(store) == 4
        kept, dropped = store.compact()
        assert (kept, dropped) == (1, 3)
        assert self._line_count(store) == 1

    def test_compact_round_trips(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        store.put(job, stats)  # duplicate line for the same key
        before = store.get(job).to_dict()
        store.compact()
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.get(job).to_dict() == before

    def test_compact_is_idempotent(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        store.put(job, stats)
        assert store.compact() == (1, 1)
        assert store.compact() == (1, 0)

    def test_compact_empty_store(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.compact() == (0, 0)

    def test_cli_cache_compact_verb(self, tmp_path, job, stats, capsys):
        from repro.runner.cli import main as cli_main

        store = ResultStore(tmp_path)
        store.put(job, stats)
        store.put(job, stats)
        assert cli_main(["cache", "compact", "--cache", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "kept 1 entries" in out and "dropped 1" in out
        assert len(ResultStore(tmp_path)) == 1

    def test_compact_keeps_entries_appended_by_another_process(self, tmp_path, job, stats):
        writer = ResultStore(tmp_path)
        writer.put(job, stats)
        compactor = ResultStore(tmp_path)  # snapshot taken here
        other = Job(workload=job.workload, proto=adaptive_protocol(7),
                    arch=job.arch, scale=job.scale)
        writer.put(other, stats)  # appended after the compactor loaded
        kept, dropped = compactor.compact()
        assert (kept, dropped) == (2, 0)
        assert len(ResultStore(tmp_path)) == 2


class TestConcurrentAppendersAndMerge:
    def _other_job(self, job, pct=9):
        return Job(workload=job.workload, proto=adaptive_protocol(pct),
                   arch=job.arch, scale=job.scale)

    def test_interleaved_writers_lose_nothing(self, tmp_path, job, stats):
        """Two store instances (a daemon's and a client's) share one log."""
        a = ResultStore(tmp_path)
        b = ResultStore(tmp_path)
        other = self._other_job(job)
        a.put(job, stats)
        b.put(other, stats)
        a.put(self._other_job(job, pct=11), stats)
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 3
        assert reopened.get(job) is not None
        assert reopened.get(other) is not None

    def test_put_appends_exactly_one_line(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(job, stats)
        raw = store.path.read_bytes()
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1
        json.loads(raw)  # the single line is one complete record

    def test_merge_folds_remote_entries(self, tmp_path, job, stats):
        local = ResultStore(tmp_path / "local")
        local.put(job, stats)
        remote = ResultStore(tmp_path / "remote")
        other = self._other_job(job)
        remote.put(job, stats)  # identical twin of the local entry
        remote.put(other, stats)  # new to the local cache
        merged, skipped = local.merge(tmp_path / "remote")
        assert (merged, skipped) == (1, 1)
        reopened = ResultStore(tmp_path / "local")
        assert len(reopened) == 2
        assert reopened.get(other).to_dict() == stats.to_dict()

    def test_merge_last_entry_per_key_wins(self, tmp_path, job, stats):
        local = ResultStore(tmp_path / "local")
        local.put(job, stats)
        remote = ResultStore(tmp_path / "remote")
        doctored = stats.to_dict()
        doctored["instructions"] += 1
        remote.put(job, doctored)
        merged, skipped = local.merge(remote)
        assert (merged, skipped) == (1, 0)
        # Replaying the merged log keeps the incoming (last) entry.
        assert ResultStore(tmp_path / "local").get(job).instructions == (
            stats.instructions + 1
        )

    def test_cli_cache_merge_verb(self, tmp_path, job, stats, capsys):
        from repro.runner.cli import main as cli_main

        ResultStore(tmp_path / "remote").put(job, stats)
        rc = cli_main(["cache", "merge", str(tmp_path / "remote"),
                       "--cache", str(tmp_path / "local")])
        assert rc == 0
        assert "1 entries folded" in capsys.readouterr().out
        assert ResultStore(tmp_path / "local").get(job) is not None

    def test_cli_cache_merge_requires_source(self, tmp_path, capsys):
        from repro.runner.cli import main as cli_main

        assert cli_main(["cache", "merge", "--cache", str(tmp_path)]) == 2
        assert "source" in capsys.readouterr().err

    def test_cli_cache_merge_rejects_missing_source(self, tmp_path, capsys):
        """A typo'd source path must fail loudly, not report '0 folded'."""
        from repro.runner.cli import main as cli_main

        rc = cli_main(["cache", "merge", str(tmp_path / "no-such-cache"),
                       "--cache", str(tmp_path / "local")])
        assert rc == 1
        assert "no result cache" in capsys.readouterr().err

    def test_cli_cache_merge_zero_byte_source_is_clean_noop(
        self, tmp_path, job, stats, capsys
    ):
        """A truncated/never-written results.jsonl (e.g. a daemon died
        before its first append) merges as zero entries, no traceback."""
        from repro.runner.cli import main as cli_main

        source = tmp_path / "remote"
        source.mkdir()
        (source / "results.jsonl").touch()
        local = ResultStore(tmp_path / "local")
        local.put(job, stats)
        rc = cli_main(["cache", "merge", str(source),
                       "--cache", str(tmp_path / "local")])
        assert rc == 0
        assert "0 entries folded" in capsys.readouterr().out
        assert len(ResultStore(tmp_path / "local")) == 1  # untouched

    def test_cli_cache_merge_whitespace_only_source_is_clean_noop(
        self, tmp_path, capsys
    ):
        from repro.runner.cli import main as cli_main

        source = tmp_path / "remote"
        source.mkdir()
        (source / "results.jsonl").write_text("\n\n  \n")
        rc = cli_main(["cache", "merge", str(source),
                       "--cache", str(tmp_path / "local")])
        assert rc == 0
        assert "0 entries folded" in capsys.readouterr().out

    def test_merge_into_fresh_destination_creates_it(self, tmp_path, job, stats):
        """Destination cache that does not exist yet: merge materializes it."""
        remote = ResultStore(tmp_path / "remote")
        remote.put(job, stats)
        dest = tmp_path / "brand-new"
        assert not dest.exists()
        merged, skipped = ResultStore(dest).merge(tmp_path / "remote")
        assert (merged, skipped) == (1, 0)
        assert ResultStore(dest).get(job) is not None

    def test_zero_byte_log_loads_as_empty_store(self, tmp_path):
        (tmp_path / "results.jsonl").touch()
        store = ResultStore(tmp_path)
        assert len(store) == 0
        assert store.merge(tmp_path) == (0, 0)  # even self-merge is a no-op


class TestVerifiedEntries:
    def _twin(self, job, verify):
        return Job(workload=job.workload, proto=job.proto, arch=job.arch,
                   scale=job.scale, verify=verify)

    def test_unverified_entry_misses_for_verify_job(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(self._twin(job, False), stats)
        assert store.get(self._twin(job, True)) is None  # must re-run checked
        assert store.get(self._twin(job, False)) is not None

    def test_verified_entry_satisfies_both_twins(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(self._twin(job, True), stats)
        assert store.get(self._twin(job, True)) is not None
        assert store.get(self._twin(job, False)) is not None

    def test_verified_run_upgrades_the_entry(self, tmp_path, job, stats):
        store = ResultStore(tmp_path)
        store.put(self._twin(job, False), stats)
        store.put(self._twin(job, True), stats)  # the re-run's result lands
        reopened = ResultStore(tmp_path)
        assert reopened.get(self._twin(job, True)) is not None
