"""Trace-variant confidence intervals (ROADMAP): seed sweeps + spread rows.

One grid point is swept over ``Job.seed`` 0..4; the seed realizations must
(a) actually differ - otherwise the axis is dead, (b) stay within a bounded
completion-time spread - otherwise a single-seed figure point would be
noise, and (c) aggregate into exactly one spread row per grid point.
"""

from __future__ import annotations

import json

from repro.experiments.harness import bench_arch
from repro.runner.cli import main as repro_main
from repro.runner.parallel import ParallelRunner
from repro.runner.sweep import SweepGrid, seed_spread_rows, seed_spread_table, sweep_rows

#: The sanity bound on max/min completion time across trace realizations of
#: one point.  Tiny-scale traces are the noisiest we ship; anything beyond
#: 1.5x would make single-seed figures meaningless.
SPREAD_BOUND = 1.5


def small_grid(num_seeds: int = 5) -> SweepGrid:
    # radix is seed-sensitive at tiny scale (its key streams are drawn from
    # the salted rng), unlike e.g. tiny tsp whose timing is seed-stable.
    return SweepGrid(
        workloads=("radix",),
        families=("baseline",),
        pcts=(1,),
        arch=bench_arch(16),
        scale="tiny",
        num_seeds=num_seeds,
    )


class TestSeedAxis:
    def test_grid_expands_seed_axis(self):
        grid = small_grid(5)
        jobs = grid.jobs()
        assert [job.seed for job in jobs] == [0, 1, 2, 3, 4]
        assert len({job.key for job in jobs}) == 5  # distinct content hashes
        assert len({job.trace_key for job in jobs}) == 5  # distinct traces
        assert "x 5 seeds" in grid.describe()

    def test_seed_base_offsets_the_axis(self):
        grid = SweepGrid(
            workloads=("radix",), families=("baseline",), pcts=(1,),
            arch=bench_arch(16), scale="tiny", seed=7, num_seeds=3,
        )
        assert [job.seed for job in grid.jobs()] == [7, 8, 9]


class TestSpreadReport:
    def test_spread_is_reported_and_bounded(self):
        grid = small_grid(5)
        jobs = grid.jobs()
        results = ParallelRunner().run(jobs)
        rows = sweep_rows(jobs, results)
        spread = seed_spread_rows(rows)
        assert len(spread) == 1  # one row per grid point
        row = spread[0]
        assert row["workload"] == "radix"
        assert row["seeds"] == [0, 1, 2, 3, 4]
        # The realizations genuinely differ...
        times = {r["completion_time"] for r in rows}
        assert len(times) > 1
        # ...and the spread is reported and bounded.
        assert 1.0 < row["completion_time_spread"] <= SPREAD_BOUND
        assert 1.0 <= row["energy_spread"] <= SPREAD_BOUND
        mean = row["completion_time_geomean"]
        assert min(times) <= mean <= max(times)
        table = seed_spread_table(spread)
        assert "radix" in table and "T spread" in table

    def test_single_seed_rows_collapse_to_spread_one(self):
        grid = small_grid(1)
        jobs = grid.jobs()
        results = ParallelRunner().run(jobs)
        spread = seed_spread_rows(sweep_rows(jobs, results))
        assert spread[0]["completion_time_spread"] == 1.0


class TestCliSeedsFlag:
    def test_sweep_seeds_flag_reports_spread(self, tmp_path, capsys):
        out = tmp_path / "rows.json"
        code = repro_main([
            "sweep", "--workloads", "radix", "--pct", "1", "--protocols",
            "baseline", "--seeds", "3", "--cores", "16", "--scale", "tiny",
            "--no-cache", "--quiet", "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert sorted(payload) == ["rows", "spread"]
        assert len(payload["rows"]) == 3
        assert [r["seed"] for r in payload["rows"]] == [0, 1, 2]
        assert len(payload["spread"]) == 1
        assert payload["spread"][0]["seeds"] == [0, 1, 2]
        assert payload["spread"][0]["completion_time_spread"] <= SPREAD_BOUND

    def test_sweep_seeds_table_output(self, capsys):
        code = repro_main([
            "sweep", "--workloads", "radix", "--pct", "1", "--protocols",
            "baseline", "--seeds", "2", "--cores", "16", "--scale", "tiny",
            "--no-cache", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "T spread" in out
