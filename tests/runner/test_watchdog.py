"""ProcessBackend hung-worker watchdog: strike, re-dispatch, serial fallback.

``multiprocessing.Pool`` silently loses the task of a worker that
``os._exit``\\ s and waits forever on one that wedges; the watchdog path
(``job_timeout``) is the defense.  These tests inject real worker crashes
and hangs through the :data:`~repro.faults.core.FAULTS_ENV` schedule (spawn
workers inherit it; the rules are scoped ``worker`` so the parent - and its
serial-fallback path - stay clean) and pin the recovery invariant: the
batch completes with stats bit-identical to the serial reference, the cost
of a fault is wall-clock only.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigError
from repro.common.params import baseline_protocol
from repro.experiments.harness import adaptive_protocol, bench_arch
from repro.faults import FAULTS_ENV, FaultRule, FaultSchedule
from repro.runner.backends import LocalBackend, ProcessBackend
from repro.runner.backends.process import _worker_init
from repro.runner.job import Job

#: Generous relative to a ~25 ms tiny job, but short enough that the two
#: strike cycles a full strikeout needs stay inside the test budget.
JOB_TIMEOUT = 2.0


def _jobs() -> list[Job]:
    arch = bench_arch(16)
    return [
        Job(workload=name, proto=proto, arch=arch, scale="tiny")
        for name in ("tsp", "matmul")
        for proto in (baseline_protocol(), adaptive_protocol(4))
    ]


def _tasks(jobs):
    return [(job.to_dict(), None) for job in jobs]


def _canon(results: dict[str, dict]) -> dict[str, str]:
    return {key: json.dumps(stats, sort_keys=True) for key, stats in results.items()}


@pytest.fixture(scope="module")
def reference() -> dict[str, str]:
    return _canon(dict(LocalBackend().run_batch(_tasks(_jobs()))))


def _schedule(point: str, **args) -> str:
    return FaultSchedule(
        seed=0, rules=(FaultRule(point, scope="worker", hit=1, args=args),)
    ).to_env()


class TestWatchdogRecovery:
    def test_hung_worker_is_terminated_and_batch_matches_serial(
        self, reference, monkeypatch
    ):
        """The satellite contract: a worker sleeping past --job-timeout is
        killed, its job re-runs, and the sweep output is bit-identical."""
        monkeypatch.setenv(FAULTS_ENV, _schedule("worker.hang", hang_s=60.0))
        backend = ProcessBackend(workers=2, job_timeout=JOB_TIMEOUT, max_strikes=2)
        try:
            got = _canon(dict(backend.run_batch(_tasks(_jobs()))))
        finally:
            backend.close()
        assert backend.strikes >= 1  # the watchdog really fired
        assert got == reference

    def test_crashed_worker_task_is_rescued(self, reference, monkeypatch):
        """os._exit loses the task silently (the pool repopulates but the
        handle never resolves); only the watchdog can get it re-run."""
        monkeypatch.setenv(FAULTS_ENV, _schedule("worker.crash"))
        backend = ProcessBackend(workers=2, job_timeout=JOB_TIMEOUT, max_strikes=2)
        try:
            got = _canon(dict(backend.run_batch(_tasks(_jobs()))))
        finally:
            backend.close()
        assert got == reference

    def test_strikeout_falls_back_to_serial_in_parent(self, reference, monkeypatch):
        """After max_strikes terminations the backend stops trusting pools;
        the remainder runs in the parent, where the worker-scoped fault
        cannot fire, so the batch still completes bit-identically."""
        monkeypatch.setenv(FAULTS_ENV, _schedule("worker.hang", hang_s=60.0))
        backend = ProcessBackend(workers=2, job_timeout=JOB_TIMEOUT, max_strikes=1)
        try:
            got = _canon(dict(backend.run_batch(_tasks(_jobs()))))
        finally:
            backend.close()
        assert backend.strikes == 1
        assert backend.source == "serial"
        assert got == reference

    def test_clean_batch_takes_watchdog_path_without_strikes(self, reference):
        backend = ProcessBackend(workers=2, job_timeout=30.0)
        try:
            got = _canon(dict(backend.run_batch(_tasks(_jobs()))))
        finally:
            backend.close()
        assert backend.strikes == 0
        assert backend.source == "parallel"
        assert got == reference

    def test_single_task_with_timeout_is_watched_not_inline(self, monkeypatch):
        """With a watchdog armed, even one task must not hang the parent."""
        monkeypatch.setenv(FAULTS_ENV, _schedule("worker.hang", hang_s=60.0))
        backend = ProcessBackend(workers=1, job_timeout=JOB_TIMEOUT, max_strikes=1)
        try:
            job = _jobs()[0]
            got = dict(backend.run_batch([(job.to_dict(), None)]))
        finally:
            backend.close()
        assert job.key in got


class TestWatchdogConfig:
    def test_job_timeout_must_be_positive(self):
        with pytest.raises(ConfigError, match="job_timeout"):
            ProcessBackend(workers=1, job_timeout=0)

    def test_max_strikes_must_be_at_least_one(self):
        with pytest.raises(ConfigError, match="max_strikes"):
            ProcessBackend(workers=1, max_strikes=0)

    def test_worker_init_marks_role(self):
        from repro.faults import FAULTS

        prior = FAULTS.role
        try:
            _worker_init()
            assert FAULTS.role == "worker"
        finally:
            FAULTS.role = prior
