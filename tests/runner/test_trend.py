"""``repro trend``: cross-revision bench / result-cache diffing."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ReproError
from repro.runner.cli import main as cli_main
from repro.runner.trend import (
    compare,
    format_rows,
    load_source,
    run_trend,
    worst_regression,
)


def bench_report(simulate: int, build: int = 1_000_000, family: str = "pct") -> dict:
    return {
        "schema": 2,
        "metric": "records/second",
        "points": [
            {
                "workload": "tsp",
                "family": family,
                "pct": 4,
                "cores": 16,
                "scale": "tiny",
                "records": 1000,
                "build_records_per_second": build,
                "simulate_records_per_second": simulate,
            }
        ],
    }


def write_json(path, payload):
    path.write_text(json.dumps(payload) + "\n", encoding="utf-8")


def cache_log(path, completion: float, key: str = "k1"):
    record = {
        "schema": 3,
        "key": key,
        "job": {
            "workload": "tsp",
            "scale": "tiny",
            "proto": {"protocol": "baseline"},
            "arch": {"num_cores": 16},
        },
        "stats": {
            "completion_time": completion,
            "energy": {"l1d": 1.0, "l2": 2.0, "router": 0.5, "link": 0.5},
        },
    }
    path.write_text(json.dumps(record) + "\n", encoding="utf-8")


class TestBenchTrend:
    def test_improvement_passes_gate(self, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        write_json(old, bench_report(100_000))
        write_json(new, bench_report(210_000))
        rows, code = run_trend(str(old), str(new), assert_within=0.30)
        assert code == 0
        sim = [r for r in rows if r["metric"] == "simulate_records_per_second"]
        assert sim and sim[0]["ratio"] == pytest.approx(2.1)

    def test_regression_beyond_threshold_fails(self, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        write_json(old, bench_report(100_000))
        write_json(new, bench_report(60_000))  # -40% < gate of -30%
        rows, code = run_trend(str(old), str(new), assert_within=0.30)
        assert code == 1

    def test_regression_within_threshold_passes(self, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        write_json(old, bench_report(100_000))
        write_json(new, bench_report(80_000))  # -20% > gate of -30%
        _rows, code = run_trend(str(old), str(new), assert_within=0.30)
        assert code == 0

    def test_bench_gate_ignores_build_throughput(self, tmp_path):
        # Only simulate throughput gates bench comparisons (CI contract).
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        write_json(old, bench_report(100_000, build=2_000_000))
        write_json(new, bench_report(100_000, build=500_000))
        _rows, code = run_trend(str(old), str(new), assert_within=0.30)
        assert code == 0

    def test_points_match_on_family(self, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        write_json(old, bench_report(100_000, family="dls"))
        write_json(new, bench_report(50_000, family="neat"))
        rows, _ = run_trend(str(old), str(new))
        assert rows == []  # different families never compare

    def test_cli_exit_code_and_table(self, tmp_path, capsys):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        write_json(old, bench_report(100_000))
        write_json(new, bench_report(50_000))
        code = cli_main(["trend", str(old), str(new), "--assert-within", "0.3"])
        assert code == 1
        out = capsys.readouterr()
        assert "simulate_records_per_second" in out.out
        assert "REGRESSION" in out.err


class TestImplementationGuard:
    """Bench reports stamp kernel implementations (schema 3: mesh only;
    schema 4: mesh AND sched); trend refuses to compare accel against
    fallback on any shared kernel (the diff would measure the kernel)."""

    def stamped(self, simulate: int, impl: str) -> dict:
        report = bench_report(simulate)
        report["schema"] = 3
        report["implementation"] = impl
        report["accel"] = {"compiled": impl == "accel", "compiler": None, "reason": None}
        return report

    def stamped4(self, simulate: int, mesh: str, sched: str) -> dict:
        report = self.stamped(simulate, mesh)
        report["schema"] = 4
        report["implementations"] = {"mesh": mesh, "sched": sched}
        return report

    def test_mismatched_implementations_rejected(self, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        write_json(old, self.stamped(100_000, "accel"))
        write_json(new, self.stamped(100_000, "fallback"))
        with pytest.raises(ReproError, match="different kernel implementations"):
            run_trend(str(old), str(new), assert_within=0.30)

    def test_sched_mismatch_rejected(self, tmp_path):
        # Same mesh stamp on both sides: only the sched provenance differs,
        # and the schema-4 guard must still catch it.
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        write_json(old, self.stamped4(100_000, "accel", "accel"))
        write_json(new, self.stamped4(100_000, "accel", "fallback"))
        with pytest.raises(ReproError, match="sched: 'accel' vs 'fallback'"):
            run_trend(str(old), str(new), assert_within=0.30)

    def test_schema3_vs_schema4_compares_shared_kernels_only(self, tmp_path):
        # A schema-3 report says nothing about sched: only the mesh stamps
        # are comparable, and they agree here.
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        write_json(old, self.stamped(100_000, "accel"))
        write_json(new, self.stamped4(100_000, "accel", "fallback"))
        _rows, code = run_trend(str(old), str(new), assert_within=0.30)
        assert code == 0

    def test_allow_impl_mismatch_overrides(self, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        write_json(old, self.stamped(100_000, "accel"))
        write_json(new, self.stamped(100_000, "fallback"))
        rows, code = run_trend(
            str(old), str(new), assert_within=0.30, allow_impl_mismatch=True
        )
        assert code == 0 and rows

    def test_matching_implementations_compare(self, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        write_json(old, self.stamped(100_000, "fallback"))
        write_json(new, self.stamped(100_000, "fallback"))
        _rows, code = run_trend(str(old), str(new), assert_within=0.30)
        assert code == 0

    def test_unstamped_legacy_reports_compare(self, tmp_path):
        # Pre-PR-8 reports carry no provenance: let them through.
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        write_json(old, bench_report(100_000))
        write_json(new, self.stamped(100_000, "accel"))
        _rows, code = run_trend(str(old), str(new), assert_within=0.30)
        assert code == 0

    def test_cli_flag_overrides(self, tmp_path, capsys):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        write_json(old, self.stamped(100_000, "accel"))
        write_json(new, self.stamped(100_000, "fallback"))
        assert cli_main(["trend", str(old), str(new)]) == 1
        assert "different kernel implementations" in capsys.readouterr().err
        assert (
            cli_main(["trend", str(old), str(new), "--allow-impl-mismatch"]) == 0
        )


class TestCacheTrend:
    def test_matching_keys_compare_completion_time(self, tmp_path):
        old, new = tmp_path / "old.jsonl", tmp_path / "new.jsonl"
        cache_log(old, 1000.0)
        cache_log(new, 1000.0)
        rows, code = run_trend(str(old), str(new), assert_within=0.05)
        assert code == 0
        ct = [r for r in rows if r["metric"] == "completion_time"]
        assert ct and ct[0]["ratio"] == 1.0
        assert any(r["metric"] == "energy_total" for r in rows)

    def test_completion_time_drift_fails_gate(self, tmp_path):
        old, new = tmp_path / "old.jsonl", tmp_path / "new.jsonl"
        cache_log(old, 1000.0)
        cache_log(new, 1200.0)  # +20% simulated time = semantic drift
        _rows, code = run_trend(str(old), str(new), assert_within=0.05)
        assert code == 1

    def test_disjoint_keys_do_not_compare(self, tmp_path):
        old, new = tmp_path / "old.jsonl", tmp_path / "new.jsonl"
        cache_log(old, 1000.0, key="a")
        cache_log(new, 2000.0, key="b")
        rows, code = run_trend(str(old), str(new), assert_within=0.01)
        assert rows == [] and code == 0


class TestSourceDetection:
    def test_kind_mismatch_rejected(self, tmp_path):
        bench, cache = tmp_path / "b.json", tmp_path / "c.jsonl"
        write_json(bench, bench_report(1))
        cache_log(cache, 1.0)
        with pytest.raises(ReproError, match="cannot compare"):
            run_trend(str(bench), str(cache))

    def test_missing_source_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_source(tmp_path / "nope.json")

    def test_cache_directory_resolves_results_jsonl(self, tmp_path):
        d = tmp_path / ".repro-cache"
        d.mkdir()
        cache_log(d / "results.jsonl", 5.0)
        kind, points = load_source(d)
        assert kind == "cache" and len(points) == 1

    def test_real_bench_pr3_trajectory_file_loads(self):
        # The committed trajectory files (baseline/columnar sides) parse.
        import pathlib

        kind, points = load_source(pathlib.Path(__file__).parents[2] / "BENCH_pr3.json")
        assert kind == "bench"
        assert all("simulate_records_per_second" in m for m in points.values())


class TestHelpers:
    def test_worst_regression_picks_largest(self):
        rows = compare(
            {("a",): {"simulate_records_per_second": 100}},
            {("a",): {"simulate_records_per_second": 40}},
        )
        worst = worst_regression(rows)
        assert worst["regression"] == pytest.approx(0.6)
        assert "simulate" in format_rows(rows)
