"""Property-based tests for the DRAM controller bandwidth/queueing model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import ArchConfig
from repro.mem.memctrl import MemorySubsystem

ARCH = ArchConfig(num_cores=16, num_memory_controllers=4)


class TestControllerMapping:
    @given(line=st.integers(min_value=0, max_value=1 << 30))
    def test_every_line_maps_to_a_controller_tile(self, line):
        memsys = MemorySubsystem(ARCH)
        ctrl = memsys.controller_for_line(line)
        assert ctrl.tile in ARCH.memory_controller_tiles

    @given(line=st.integers(min_value=0, max_value=1 << 30))
    def test_mapping_is_stable(self, line):
        memsys = MemorySubsystem(ARCH)
        assert memsys.controller_for_line(line) is memsys.controller_for_line(line)

    def test_lines_interleave_across_all_controllers(self):
        memsys = MemorySubsystem(ARCH)
        used = {memsys.controller_for_line(line).tile for line in range(16)}
        assert used == set(ARCH.memory_controller_tiles)


class TestTiming:
    @given(start=st.floats(min_value=0, max_value=1e6))
    def test_single_access_pays_dram_latency(self, start):
        memsys = MemorySubsystem(ARCH)
        ctrl = memsys.controller_for_line(0)
        finish, queue = ctrl.access(start, ARCH.line_size)
        assert queue == 0.0  # empty controller: no queueing
        assert finish >= start + ARCH.dram_latency_cycles

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=40),
        gap=st.floats(min_value=0.0, max_value=5.0),
    )
    def test_back_to_back_requests_queue_for_bandwidth(self, n, gap):
        """Requests arriving faster than bandwidth drains must queue, and
        finish times must be nondecreasing for nondecreasing arrivals."""
        memsys = MemorySubsystem(ARCH)
        ctrl = memsys.controller_for_line(0)
        t = 0.0
        last_finish = 0.0
        for _ in range(n):
            finish, queue = ctrl.access(t, ARCH.line_size)
            assert queue >= 0.0
            assert finish >= last_finish
            last_finish = finish
            t += gap
        # Sustained service rate cannot exceed the configured bandwidth.
        min_service = ARCH.line_size / ARCH.dram_bandwidth_bytes_per_cycle
        assert last_finish >= (n - 1) * min_service

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=1, max_value=20))
    def test_request_accounting(self, n):
        memsys = MemorySubsystem(ARCH)
        ctrl = memsys.controller_for_line(0)
        for i in range(n):
            ctrl.access(float(i * 1000), ARCH.line_size)
        assert ctrl.requests == n
        assert ctrl.bytes_transferred == n * ARCH.line_size
        assert memsys.total_requests == n
