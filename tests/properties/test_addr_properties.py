"""Property-based tests for address arithmetic (repro.common.addr)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import addr

addresses = st.integers(min_value=0, max_value=addr.MAX_ADDRESS)
page_sizes = st.sampled_from([1024, 4096, 8192, 65536])


class TestLineMath:
    @given(a=addresses)
    def test_line_base_is_aligned_and_contains_address(self, a):
        base = addr.line_base(a)
        assert base % addr.LINE_SIZE == 0
        assert base <= a < base + addr.LINE_SIZE

    @given(a=addresses)
    def test_line_of_matches_line_base(self, a):
        assert addr.line_of(a) == addr.line_base(a) // addr.LINE_SIZE

    @given(a=addresses)
    def test_all_bytes_of_a_line_share_its_number(self, a):
        base = addr.line_base(a)
        assert addr.line_of(base) == addr.line_of(base + addr.LINE_SIZE - 1)
        assert addr.line_of(base + addr.LINE_SIZE) == addr.line_of(base) + 1

    @given(a=addresses)
    def test_word_in_line_bounded(self, a):
        assert 0 <= addr.word_in_line(a) < addr.WORDS_PER_LINE

    @given(a=addresses)
    def test_word_of_consistent_with_line_and_offset(self, a):
        assert addr.word_of(a) == addr.line_of(a) * addr.WORDS_PER_LINE + addr.word_in_line(a)


class TestPageMath:
    @given(a=addresses, page_size=page_sizes)
    def test_page_of_consistent_with_lines_in_page(self, a, page_size):
        page = addr.page_of(a, page_size)
        lines = addr.lines_in_page(page, page_size)
        assert addr.line_of(a) in lines

    @given(page=st.integers(min_value=0, max_value=1 << 30), page_size=page_sizes)
    def test_lines_in_page_partition_the_address_space(self, page, page_size):
        lines = addr.lines_in_page(page, page_size)
        next_lines = addr.lines_in_page(page + 1, page_size)
        assert len(lines) == page_size // addr.LINE_SIZE
        assert lines.stop == next_lines.start  # contiguous, no overlap

    @given(a=addresses, page_size=page_sizes)
    def test_pages_partition_lines(self, a, page_size):
        # A line never straddles a page (page sizes are line multiples).
        line_start = addr.line_base(a)
        line_end = line_start + addr.LINE_SIZE - 1
        assert addr.page_of(line_start, page_size) == addr.page_of(line_end, page_size)


class TestAlignUp:
    @given(v=st.integers(min_value=0, max_value=1 << 40),
           align=st.sampled_from([1, 8, 64, 4096]))
    def test_result_is_aligned_and_minimal(self, v, align):
        r = addr.align_up(v, align)
        assert r % align == 0
        assert r >= v
        assert r - v < align

    @given(v=st.integers(min_value=0, max_value=1 << 40))
    def test_idempotent(self, v):
        once = addr.align_up(v, 4096)
        assert addr.align_up(once, 4096) == once

    def test_nonpositive_alignment_rejected(self):
        with pytest.raises(ValueError, match="alignment"):
            addr.align_up(10, 0)
