"""Energy accounting properties: linearity, additivity, non-negativity."""

from __future__ import annotations

import dataclasses

from hypothesis import given
from hypothesis import strategies as st

from repro.common.params import ArchConfig, EnergyConfig
from repro.energy.model import EnergyCounters, EnergyModel
from repro.network.mesh import MeshNetwork

ARCH = ArchConfig(num_cores=16, num_memory_controllers=4)

counter_values = st.integers(min_value=0, max_value=10_000)


@st.composite
def random_counters(draw):
    counters = EnergyCounters()
    for name in EnergyCounters.__slots__:
        setattr(counters, name, draw(counter_values))
    return counters


def fresh_network() -> MeshNetwork:
    return MeshNetwork(ARCH)


class TestBreakdownProperties:
    @given(counters=random_counters())
    def test_total_is_sum_of_components(self, counters):
        breakdown = EnergyModel().breakdown(counters, fresh_network())
        assert breakdown.total == (
            breakdown.l1i + breakdown.l1d + breakdown.l2
            + breakdown.directory + breakdown.router + breakdown.link
        )
        assert breakdown.caches + breakdown.network == breakdown.total

    @given(counters=random_counters())
    def test_energy_nonnegative(self, counters):
        breakdown = EnergyModel().breakdown(counters, fresh_network())
        assert all(v >= 0 for v in breakdown.as_dict().values())

    @given(counters=random_counters())
    def test_zero_events_zero_energy(self, counters):
        zero = EnergyCounters()
        breakdown = EnergyModel().breakdown(zero, fresh_network())
        assert breakdown.total == 0.0

    @given(a=random_counters(), b=random_counters())
    def test_additive_in_event_counts(self, a, b):
        model = EnergyModel()
        net = fresh_network()
        merged = EnergyCounters()
        for name in EnergyCounters.__slots__:
            setattr(merged, name, getattr(a, name) + getattr(b, name))
        total_a = model.breakdown(a, net).total
        total_b = model.breakdown(b, net).total
        total_merged = model.breakdown(merged, net).total
        assert abs(total_merged - (total_a + total_b)) < 1e-6 * max(1.0, total_merged)

    @given(counters=random_counters(), factor=st.integers(min_value=0, max_value=7))
    def test_homogeneous_in_event_counts(self, counters, factor):
        model = EnergyModel()
        net = fresh_network()
        scaled = EnergyCounters()
        for name in EnergyCounters.__slots__:
            setattr(scaled, name, getattr(counters, name) * factor)
        base = model.breakdown(counters, net).total
        scaled_total = model.breakdown(scaled, net).total
        assert abs(scaled_total - factor * base) < 1e-6 * max(1.0, scaled_total)

    @given(counters=random_counters())
    def test_scaled_breakdown_matches(self, counters):
        breakdown = EnergyModel().breakdown(counters, fresh_network())
        half = breakdown.scaled(0.5)
        assert abs(half.total - breakdown.total * 0.5) < 1e-9 * max(1.0, breakdown.total)

    @given(counters=random_counters())
    def test_config_field_scaling_moves_exactly_one_component(self, counters):
        # Doubling the L2 word-read energy only changes the L2 component.
        base_cfg = EnergyConfig()
        bumped = dataclasses.replace(base_cfg, l2_word_read=base_cfg.l2_word_read * 2)
        net = fresh_network()
        a = EnergyModel(base_cfg).breakdown(counters, net)
        b = EnergyModel(bumped).breakdown(counters, net)
        assert b.l1i == a.l1i and b.l1d == a.l1d and b.router == a.router
        import pytest

        assert b.l2 - a.l2 == pytest.approx(counters.l2_word_reads * base_cfg.l2_word_read)
