"""Property-based tests for the locality classifier state machine.

These check Figure 4's transition diagram holds under arbitrary event
sequences: modes only change through the defined promotion/demotion arcs,
remote utilization stays within its hardware field width, and RAT levels
move only as Section 3.3 prescribes.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.classifier.complete import CompleteClassifier
from repro.coherence.classifier.limited import LimitedClassifier
from repro.common.params import ProtocolConfig
from repro.common.types import RemovalReason, SharerMode
from repro.mem.l2 import L2Line

#: Abstract classifier events: (kind, core, value).
events = st.lists(
    st.tuples(
        st.sampled_from(["remote_access", "removal_evict", "removal_inval", "write", "grant"]),
        st.integers(min_value=0, max_value=7),  # core
        st.integers(min_value=0, max_value=12),  # private utilization at removal
    ),
    min_size=1,
    max_size=60,
)

configs = st.builds(
    ProtocolConfig,
    pct=st.integers(min_value=1, max_value=8),
    classifier=st.sampled_from(["limited", "complete"]),
    limited_k=st.integers(min_value=1, max_value=4),
    remote_policy=st.sampled_from(["rat", "timestamp"]),
    rat_max=st.just(16),
    n_rat_levels=st.integers(min_value=1, max_value=4),
    one_way=st.booleans(),
)


def make_classifier(proto: ProtocolConfig):
    if proto.classifier == "complete":
        return CompleteClassifier(proto)
    return LimitedClassifier(proto)


def drive(classifier, l2line: L2Line, kind: str, core: int, putil: int) -> None:
    if kind == "remote_access":
        mode, entry = classifier.resolve_mode(l2line, core)
        if mode is SharerMode.REMOTE:
            classifier.on_remote_access(l2line, entry, None, True)
    elif kind == "removal_evict":
        classifier.on_removal(l2line, core, putil, RemovalReason.EVICTION)
    elif kind == "removal_inval":
        classifier.on_removal(l2line, core, putil, RemovalReason.INVALIDATION)
    elif kind == "write":
        classifier.on_write(l2line, core)
    else:  # grant
        classifier.note_private_grant(l2line, core)


class TestStateMachineInvariants:
    @settings(max_examples=60, deadline=None)
    @given(proto=configs, seq=events)
    def test_bounded_counters_and_levels(self, proto, seq):
        classifier = make_classifier(proto)
        l2line = L2Line()
        max_level = len(proto.rat_levels()) - 1
        for kind, core, putil in seq:
            drive(classifier, l2line, kind, core, putil)
            for entry in classifier.tracked_entries(l2line):
                # Remote utilization never exceeds the largest threshold
                # (the counter is reset at promotion/demotion time).
                assert 0 <= entry.remote_util <= proto.rat_max
                assert 0 <= entry.rat_level <= max_level
                assert entry.mode in (SharerMode.PRIVATE, SharerMode.REMOTE)

    @settings(max_examples=60, deadline=None)
    @given(proto=configs, seq=events)
    def test_one_way_complete_never_promotes(self, proto, seq):
        # Remote is terminal under Adapt1-way.  The strict version of this
        # invariant holds for the Complete classifier only: Limited_k may
        # *forget* a demoted core through slot replacement, after which the
        # returning core is legitimately re-initialized by majority vote
        # (the paper's one-way variant keeps per-core mode bits precisely
        # to avoid this, Section 3.7).
        proto = proto.replaced(one_way=True, classifier="complete")
        classifier = make_classifier(proto)
        l2line = L2Line()
        demoted: set[int] = set()
        for kind, core, putil in seq:
            drive(classifier, l2line, kind, core, putil)
            for entry in classifier.tracked_entries(l2line):
                if entry.mode is SharerMode.REMOTE:
                    demoted.add(entry.core)
                elif entry.core in demoted:
                    raise AssertionError(
                        f"one-way: core {entry.core} returned to private mode"
                    )
        assert classifier.promotions == 0

    @settings(max_examples=60, deadline=None)
    @given(proto=configs, seq=events)
    def test_one_way_limited_never_counts_promotions(self, proto, seq):
        # The promotion *counter* invariant holds for Limited_k too: slot
        # replacement re-initializes state, it never promotes.
        proto = proto.replaced(one_way=True, classifier="limited")
        classifier = make_classifier(proto)
        l2line = L2Line()
        for kind, core, putil in seq:
            drive(classifier, l2line, kind, core, putil)
        assert classifier.promotions == 0

    @settings(max_examples=60, deadline=None)
    @given(proto=configs, seq=events)
    def test_limited_k_never_tracks_more_than_k(self, proto, seq):
        proto = proto.replaced(classifier="limited")
        classifier = make_classifier(proto)
        l2line = L2Line()
        for kind, core, putil in seq:
            drive(classifier, l2line, kind, core, putil)
            assert len(classifier.tracked_entries(l2line)) <= proto.limited_k

    @settings(max_examples=60, deadline=None)
    @given(proto=configs, seq=events)
    def test_demotion_iff_utilization_below_pct(self, proto, seq):
        proto = proto.replaced(one_way=False)
        classifier = make_classifier(proto)
        l2line = L2Line()
        for kind, core, putil in seq:
            if kind.startswith("removal"):
                entry = classifier.locality_entry(l2line, core, allocate=False)
                remote_util = entry.remote_util if entry is not None else 0
                reason = (
                    RemovalReason.EVICTION
                    if kind == "removal_evict"
                    else RemovalReason.INVALIDATION
                )
                new_mode = classifier.on_removal(l2line, core, putil, reason)
                if entry is not None:
                    # Section 3.2: classify on private + remote utilization.
                    expected = (
                        SharerMode.PRIVATE
                        if putil + remote_util >= proto.pct
                        else SharerMode.REMOTE
                    )
                    assert new_mode is expected
            else:
                drive(classifier, l2line, kind, core, putil)

    @settings(max_examples=60, deadline=None)
    @given(proto=configs, seq=events)
    def test_write_zeroes_other_remote_sharers(self, proto, seq):
        classifier = make_classifier(proto)
        l2line = L2Line()
        for kind, core, putil in seq:
            drive(classifier, l2line, kind, core, putil)
        classifier.on_write(l2line, writer=0)
        for entry in classifier.tracked_entries(l2line):
            if entry.core != 0 and entry.mode is SharerMode.REMOTE:
                assert entry.remote_util == 0
                assert not entry.active


class TestRatLadder:
    @given(
        pct=st.integers(min_value=1, max_value=8),
        n_levels=st.integers(min_value=1, max_value=8),
    )
    def test_ladder_monotone_from_pct_to_max(self, pct, n_levels):
        proto = ProtocolConfig(pct=pct, rat_max=16, n_rat_levels=n_levels)
        levels = proto.rat_levels()
        assert len(levels) == n_levels
        assert levels[0] == pct
        assert list(levels) == sorted(levels)
        if n_levels > 1:
            assert levels[-1] == 16

    @given(seq=events)
    def test_eviction_demotions_climb_invalidation_demotions_hold(self, seq):
        proto = ProtocolConfig(pct=4, rat_max=16, n_rat_levels=4)
        classifier = CompleteClassifier(proto)
        l2line = L2Line()
        core = 0
        classifier.note_private_grant(l2line, core)
        entry = classifier.locality_entry(l2line, core, allocate=True)
        # Eviction-demotion raises the RAT level...
        classifier.on_removal(l2line, core, 0, RemovalReason.EVICTION)
        level_after_evict = entry.rat_level
        assert level_after_evict == 1
        # ...an invalidation-demotion leaves it alone...
        classifier.on_removal(l2line, core, 0, RemovalReason.INVALIDATION)
        assert entry.rat_level == level_after_evict
        # ...and a private classification resets it.
        classifier.on_removal(l2line, core, proto.pct, RemovalReason.EVICTION)
        assert entry.rat_level == 0
