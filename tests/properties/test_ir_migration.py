"""Columnar-IR migration properties: the refactor must be invisible.

``tests/fixtures/runstats_pr3.json`` was generated at the last pre-columnar
revision (tuple-of-records traces, record-at-a-time interpreter) for three
workloads x five protocol families at fixed seeds.  These tests assert the
columnar pipeline reproduces those fixtures **bit-identically** - scalar
trace summaries and complete ``RunStats`` payloads - plus the tracefile
v1 -> v2 story: v2 round-trips, v1 files remain loadable, and both decode
to equal traces.
"""

from __future__ import annotations

import io
import json
import pathlib
import pickle
import struct

import pytest

from repro.common.params import ArchConfig, ProtocolConfig
from repro.common.types import Op
from repro.sim.multicore import Simulator
from repro.workloads import tracefile
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.registry import load_workload

FIXTURES = pathlib.Path(__file__).parent.parent / "fixtures" / "runstats_pr3.json"

#: The four accelerator combinations (mesh x sched, each on/off).  The
#: fixtures were generated pre-accelerator, so every combo must reproduce
#: them bit-identically; on hosts without a C compiler all four collapse
#: to the pure-Python fallback and still must pass.
KERNEL_COMBOS = {
    "mesh+sched": (),
    "sched-only": ("REPRO_NO_ACCEL_MESH",),
    "mesh-only": ("REPRO_NO_ACCEL_SCHED",),
    "fallback": ("REPRO_NO_ACCEL_MESH", "REPRO_NO_ACCEL_SCHED"),
}


@pytest.fixture(params=sorted(KERNEL_COMBOS), ids=sorted(KERNEL_COMBOS))
def kernel_combo(request, monkeypatch):
    for env in ("REPRO_NO_ACCEL_MESH", "REPRO_NO_ACCEL_SCHED"):
        monkeypatch.delenv(env, raising=False)
    for env in KERNEL_COMBOS[request.param]:
        monkeypatch.setenv(env, "1")
    return request.param


@pytest.fixture(scope="module")
def fixture_data():
    return json.loads(FIXTURES.read_text())


@pytest.fixture(scope="module")
def fixture_traces(fixture_data):
    arch = ArchConfig.from_dict(fixture_data["arch"])
    traces = {}
    for entry in fixture_data["entries"]:
        key = (entry["workload"], entry["scale"])
        if key not in traces:
            traces[key] = load_workload(entry["workload"], arch, scale=entry["scale"])
    return arch, traces


class TestTraceSummariesMatchSeedRevision:
    def test_scalar_summaries_bit_identical(self, fixture_data, fixture_traces):
        _arch, traces = fixture_traces
        seen = set()
        for entry in fixture_data["entries"]:
            key = (entry["workload"], entry["scale"])
            if key in seen:
                continue
            seen.add(key)
            trace = traces[key]
            expected = entry["trace"]
            assert trace.total_records == expected["total_records"]
            assert trace.memory_accesses == expected["memory_accesses"]
            assert trace.instructions == expected["instructions"]
            assert trace.footprint_lines() == expected["footprint_lines"]

    def test_summaries_match_reference_tuple_computation(self, fixture_traces):
        """The cached one-pass summaries equal the old per-record formulas."""
        _arch, traces = fixture_traces
        for trace in traces.values():
            records = [r for stream in trace.per_core for r in stream]
            assert trace.total_records == len(records)
            assert trace.memory_accesses == sum(
                1 for op, _a, _w in records if op in (Op.READ, Op.WRITE)
            )
            assert trace.instructions == sum(
                work + (1 if op != Op.WORK else 0) for op, _a, work in records
            )
            assert trace.footprint_lines() == len(
                {a >> 6 for op, a, _w in records if op in (Op.READ, Op.WRITE)}
            )


class TestRunStatsMatchSeedRevision:
    def test_all_families_bit_identical(
        self, fixture_data, fixture_traces, kernel_combo
    ):
        """Every fixture entry: columnar RunStats == pre-refactor RunStats,
        under every accelerator combination."""
        arch, traces = fixture_traces
        for entry in fixture_data["entries"]:
            trace = traces[(entry["workload"], entry["scale"])]
            proto = ProtocolConfig.from_dict(entry["proto"])
            stats = Simulator(arch, proto, warmup=entry["warmup"]).run(trace)
            got = json.loads(json.dumps(stats.to_dict(), sort_keys=True))
            # Counters born after the fixture was generated (e.g. the phase
            # family's, PR 7) cannot appear in it; for these pre-phase
            # families they must be exactly zero - anything else is a
            # behavior change the fixture should have caught.
            new_keys = got.keys() - entry["stats"].keys()
            assert all(not got[key] for key in new_keys), (
                f"post-fixture counters nonzero: "
                f"{ {k: got[k] for k in new_keys if got[k]} } "
                f"({entry['workload']} {entry['family']})"
            )
            comparable = {k: v for k, v in got.items() if k in entry["stats"]}
            assert comparable == entry["stats"], (
                f"RunStats divergence: {entry['workload']} {entry['family']} "
                f"warmup={entry['warmup']}"
            )


def small_trace() -> Trace:
    builder = TraceBuilder("ir", num_cores=2)
    base = builder.address_space.alloc("region", 4096)
    t0, t1 = builder.thread(0), builder.thread(1)
    t0.work(3)
    t0.read(base)
    t0.write(base + 64)
    t1.read_words(base + 128, 4)
    builder.barrier_all()
    t0.lock(5)
    t0.write(base)
    t0.unlock(5)
    t1.work(9)
    return builder.build()


class TestColumnarRepresentation:
    def test_columns_are_int64_arrays(self):
        trace = small_trace()
        for tid in range(trace.num_cores):
            assert trace.ops[tid].typecode == "q"
            assert trace.addresses[tid].typecode == "q"
            assert trace.works[tid].typecode == "q"
            assert (
                len(trace.ops[tid])
                == len(trace.addresses[tid])
                == len(trace.works[tid])
            )

    def test_per_core_view_matches_columns(self):
        trace = small_trace()
        view = trace.per_core
        for tid in range(trace.num_cores):
            assert [r[0] for r in view[tid]] == list(trace.ops[tid])
            assert [r[1] for r in view[tid]] == list(trace.addresses[tid])
            assert [r[2] for r in view[tid]] == list(trace.works[tid])

    def test_legacy_tuple_constructor_equals_builder(self):
        a = small_trace()
        b = Trace(a.name, a.num_cores, a.per_core)
        assert tracefile.trace_equal(a, b)

    def test_pickle_round_trip_is_zero_reparse(self):
        """The pickle payload carries the raw buffers, not record tuples."""
        trace = small_trace()
        blob = pickle.dumps(trace)
        clone = pickle.loads(blob)
        assert tracefile.trace_equal(trace, clone)
        assert clone.instructions == trace.instructions
        assert clone.memory_accesses == trace.memory_accesses
        assert clone.footprint_lines() == trace.footprint_lines()
        # Columns must be adopted as arrays, not rebuilt through validation.
        assert clone.ops[0].typecode == "q"


class TestSchedulerFastPathEquivalence:
    """The inline L1-hit path must be indistinguishable from access().

    Verify mode disables the fast path, so the golden harness never covers
    the inline copies; this test pins them directly by running the same
    trace with the fast path force-disabled and demanding bit-identical
    RunStats.
    """

    def test_fast_path_on_equals_off(self, monkeypatch, kernel_combo):
        from repro.protocol.base import ProtocolEngineBase
        from repro.protocol.directory import DirectoryEngine

        arch = ArchConfig(num_cores=16, num_memory_controllers=4)
        trace = load_workload("tsp", arch, scale="tiny")
        results = {}
        for label in ("on", "off"):
            if label == "off":
                monkeypatch.setattr(
                    DirectoryEngine,
                    "scheduler_fast_path",
                    ProtocolEngineBase.scheduler_fast_path,
                )
            from repro.common.params import baseline_protocol

            for name, proto in (
                ("baseline", baseline_protocol()),
                ("adaptive", ProtocolConfig(protocol="adaptive", pct=4, rat_max=16)),
            ):
                stats = Simulator(arch, proto, warmup=True).run(trace)
                results[(label, name)] = stats.to_dict()
        for name in ("baseline", "adaptive"):
            assert results[("on", name)] == results[("off", name)], name


class TestTracefileV1Compat:
    def _write_v1(self, trace: Trace, path: pathlib.Path) -> None:
        """Emit the legacy v1 binary layout (13-byte packed records)."""
        header = struct.Struct("<4sHHH")
        stream_hdr = struct.Struct("<Q")
        record = struct.Struct("<BQI")
        out = io.BytesIO()
        name = trace.name.encode()
        out.write(header.pack(b"RPTR", 1, trace.num_cores, len(name)))
        out.write(name)
        for tid in range(trace.num_cores):
            ops = trace.ops[tid]
            out.write(stream_hdr.pack(len(ops)))
            for i in range(len(ops)):
                out.write(
                    record.pack(ops[i], trace.addresses[tid][i], trace.works[tid][i])
                )
        path.write_bytes(out.getvalue())

    def test_v1_file_still_loads(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "legacy.traceb"
        self._write_v1(trace, path)
        loaded = tracefile.load_trace_binary(path)
        assert tracefile.trace_equal(trace, loaded)

    def test_v1_to_v2_round_trip(self, tmp_path):
        """Load a v1 file, save as v2, reload: identical trace."""
        trace = small_trace()
        v1 = tmp_path / "legacy.traceb"
        self._write_v1(trace, v1)
        loaded_v1 = tracefile.load_trace_binary(v1)
        v2 = tmp_path / "modern.traceb"
        tracefile.save_trace_binary(loaded_v1, v2)
        loaded_v2 = tracefile.load_trace_binary(v2)
        assert tracefile.trace_equal(trace, loaded_v2)
        # The v2 file declares the current version in its header.
        version = struct.unpack_from("<H", v2.read_bytes(), 4)[0]
        assert version == tracefile.BINARY_FORMAT_VERSION

    def test_unknown_version_rejected(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "future.traceb"
        tracefile.save_trace_binary(trace, path)
        blob = bytearray(path.read_bytes())
        struct.pack_into("<H", blob, 4, 99)
        path.write_bytes(bytes(blob))
        from repro.common.errors import TraceError

        with pytest.raises(TraceError, match="unsupported trace version"):
            tracefile.load_trace_binary(path)

    def test_v2_simulates_identically_after_reload(self, tmp_path):
        arch = ArchConfig(num_cores=16, num_memory_controllers=4)
        trace = load_workload("tsp", arch, scale="tiny")
        path = tmp_path / "tsp.traceb"
        tracefile.save_trace_binary(trace, path)
        reloaded = tracefile.load_trace_binary(path)
        from repro.common.params import baseline_protocol

        a = Simulator(arch, baseline_protocol()).run(trace)
        b = Simulator(arch, baseline_protocol()).run(reloaded)
        assert a.to_dict() == b.to_dict()
