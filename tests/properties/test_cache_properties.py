"""Property-based tests for the set-associative cache (LRU invariants)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.common.params import CacheGeometry
from repro.mem.cache import CacheLine, SetAssocCache


def make_cache() -> SetAssocCache:
    return SetAssocCache(CacheGeometry(1, 2, 1))  # 16 lines, 8 sets, 2-way


lines = st.integers(min_value=0, max_value=255)


class TestInsertProperties:
    @given(seq=st.lists(lines, min_size=1, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, seq):
        cache = make_cache()
        for line in seq:
            cache.insert(line, CacheLine())
            assert cache.occupancy() <= cache.geometry.num_lines
            bucket_size = len(cache.entries_in_set(line))
            assert bucket_size <= cache.associativity

    @given(seq=st.lists(lines, min_size=1, max_size=200))
    def test_inserted_line_is_resident(self, seq):
        cache = make_cache()
        for line in seq:
            cache.insert(line, CacheLine())
            assert cache.get(line) is not None

    @given(seq=st.lists(lines, min_size=1, max_size=200))
    def test_victim_only_from_same_set(self, seq):
        cache = make_cache()
        for line in seq:
            evicted = cache.insert(line, CacheLine())
            if evicted is not None:
                assert evicted[0] & 7 == line & 7  # 8 sets

    @given(seq=st.lists(lines, min_size=1, max_size=200))
    def test_victim_preview_matches_insert_eviction(self, seq):
        cache = make_cache()
        for line in seq:
            preview = cache.victim(line)
            evicted = cache.insert(line, CacheLine())
            if line in [l for l, _ in cache.entries_in_set(line)] and preview is None:
                assert evicted is None
            elif evicted is not None:
                assert preview is not None
                assert preview[0] == evicted[0]

    @given(seq=st.lists(lines, min_size=3, max_size=50))
    def test_lru_evicts_least_recently_used(self, seq):
        cache = make_cache()
        for line in seq:
            cache.insert(line, CacheLine())
        # Fill one set completely with fresh lines, touching the first.
        cache2 = make_cache()
        cache2.insert(0, CacheLine())
        cache2.insert(8, CacheLine())
        cache2.touch(cache2.get(0))  # 8 is now LRU
        evicted = cache2.insert(16, CacheLine())
        assert evicted[0] == 8


class CacheMachine(RuleBasedStateMachine):
    """Stateful model check: the cache mirrors a reference dict-of-sets."""

    def __init__(self):
        super().__init__()
        self.cache = make_cache()
        self.model: dict[int, set[int]] = {s: set() for s in range(8)}

    @rule(line=lines)
    def insert(self, line):
        evicted = self.cache.insert(line, CacheLine())
        bucket = self.model[line & 7]
        if evicted is not None:
            bucket.discard(evicted[0])
        bucket.add(line)

    @rule(line=lines)
    def pop(self, line):
        entry = self.cache.pop(line)
        bucket = self.model[line & 7]
        if line in bucket:
            assert entry is not None
            bucket.discard(line)
        else:
            assert entry is None

    @rule(line=lines)
    def lookup(self, line):
        assert (self.cache.get(line) is not None) == (line in self.model[line & 7])

    @invariant()
    def occupancy_matches_model(self):
        assert self.cache.occupancy() == sum(len(b) for b in self.model.values())

    @invariant()
    def no_set_overflows(self):
        for bucket in self.model.values():
            assert len(bucket) <= 2


CacheMachine.TestCase.settings = settings(max_examples=25, stateful_step_count=40, deadline=None)
TestCacheMachine = CacheMachine.TestCase


class TestMinLastAccess:
    @given(times=st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=2))
    def test_full_set_returns_minimum(self, times):
        cache = make_cache()
        for i, t in enumerate(times):
            entry = CacheLine()
            entry.last_access = t
            cache.insert(i * 8, entry)  # same set
        assert cache.min_last_access(16) == min(times)

    def test_partial_set_returns_none(self):
        cache = make_cache()
        cache.insert(0, CacheLine())
        assert cache.min_last_access(8) is None  # one free way remains
