"""End-to-end simulation properties: determinism, conservation laws and
cross-protocol invariants checked over randomly generated workloads."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import (
    ArchConfig,
    CacheGeometry,
    ProtocolConfig,
    baseline_protocol,
    victim_replication_protocol,
)
from repro.common.types import MissType
from repro.sim.multicore import Simulator
from repro.workloads.base import TraceBuilder

ARCH = ArchConfig(
    num_cores=16,
    num_memory_controllers=4,
    l1i=CacheGeometry(1, 2, 1),
    l1d=CacheGeometry(1, 2, 1),
    l2=CacheGeometry(4, 4, 7),
)

PROTOCOLS = [
    baseline_protocol(),
    ProtocolConfig(pct=2),
    ProtocolConfig(pct=4),
    ProtocolConfig(pct=4, classifier="complete"),
    ProtocolConfig(pct=4, one_way=True),
    ProtocolConfig(pct=4, remote_policy="timestamp"),
    victim_replication_protocol(),
]


@st.composite
def random_traces(draw):
    """Small multithreaded traces with shared and private regions."""
    builder = TraceBuilder("prop", ARCH.num_cores)
    shared = builder.address_space.alloc("shared", 64 * 64)
    privates = [
        builder.address_space.alloc(f"priv{tid}", 4096) for tid in range(ARCH.num_cores)
    ]
    active = draw(st.integers(min_value=1, max_value=4))
    for tid in range(active):
        thread = builder.thread(tid)
        n = draw(st.integers(min_value=1, max_value=25))
        for _ in range(n):
            is_shared = draw(st.booleans())
            is_write = draw(st.booleans())
            if is_shared:
                address = shared + draw(st.integers(min_value=0, max_value=63)) * 64
            else:
                address = privates[tid] + draw(st.integers(min_value=0, max_value=63)) * 64
            if is_write:
                thread.write(address)
            else:
                thread.read(address)
    builder.barrier_all()
    return builder.build()


class TestDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(trace=random_traces(), proto=st.sampled_from(PROTOCOLS))
    def test_identical_runs_produce_identical_stats(self, trace, proto):
        first = Simulator(ARCH, proto).run(trace)
        second = Simulator(ARCH, proto).run(trace)
        assert first.completion_time == second.completion_time
        assert first.energy.total == second.energy.total
        assert first.network_flits == second.network_flits
        assert first.miss.breakdown() == second.miss.breakdown()


class TestConservation:
    @settings(max_examples=15, deadline=None)
    @given(trace=random_traces(), proto=st.sampled_from(PROTOCOLS))
    def test_accesses_equal_hits_plus_misses(self, trace, proto):
        stats = Simulator(ARCH, proto).run(trace)
        assert stats.miss.accesses == trace.memory_accesses
        assert stats.miss.hits + stats.miss.misses == stats.miss.accesses

    @settings(max_examples=15, deadline=None)
    @given(trace=random_traces(), proto=st.sampled_from(PROTOCOLS))
    def test_first_touch_of_every_line_is_a_cold_miss(self, trace, proto):
        stats = Simulator(ARCH, proto).run(trace)
        # Every (core, line) first touch is cold; a line touched by k cores
        # can produce at most k cold misses and at least 1.
        footprint = trace.footprint_lines()
        assert stats.miss.count(MissType.COLD) >= footprint

    @settings(max_examples=15, deadline=None)
    @given(trace=random_traces(), proto=st.sampled_from(PROTOCOLS))
    def test_completion_bounded_below_by_critical_path(self, trace, proto):
        stats = Simulator(ARCH, proto).run(trace)
        # Each record costs at least its work cycles on its own core.
        per_core_work = max(
            sum(work + 1 for _op, _a, work in stream) if stream else 0
            for stream in trace.per_core
        )
        assert stats.completion_time >= per_core_work - 1

    @settings(max_examples=15, deadline=None)
    @given(trace=random_traces())
    def test_verify_mode_passes_for_all_protocols(self, trace):
        # Functional correctness: golden-memory checks must stay silent.
        for proto in PROTOCOLS:
            Simulator(ARCH, proto, verify=True).run(trace)


class TestCrossProtocol:
    @settings(max_examples=15, deadline=None)
    @given(trace=random_traces())
    def test_adaptive_never_loses_accesses(self, trace):
        base = Simulator(ARCH, baseline_protocol()).run(trace)
        adapt = Simulator(ARCH, ProtocolConfig(pct=4)).run(trace)
        assert base.miss.accesses == adapt.miss.accesses

    @settings(max_examples=15, deadline=None)
    @given(trace=random_traces())
    def test_baseline_never_serves_word_misses(self, trace):
        base = Simulator(ARCH, baseline_protocol()).run(trace)
        assert base.miss.count(MissType.WORD) == 0
        assert base.remote_accesses == 0

    @settings(max_examples=15, deadline=None)
    @given(trace=random_traces())
    def test_warmup_reduces_or_keeps_cold_misses(self, trace):
        cold = Simulator(ARCH, baseline_protocol(), warmup=False).run(trace)
        warm = Simulator(ARCH, baseline_protocol(), warmup=True).run(trace)
        assert warm.miss.count(MissType.COLD) <= cold.miss.count(MissType.COLD)
