"""The exhaustive interleaving tier (``repro.verify.exhaustive``).

Property tests for the model-checking layer below the random-trace
differential harness: the interleaving enumerator (counts, feasibility,
uniqueness), template validation (the soundness preconditions from DESIGN.md
section 11), the delta-debug minimizer, and end-to-end runs asserting that
every feasible interleaving of every small template verifies cleanly across
all protocol families.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.common.errors import ConfigError
from repro.runner.cli import main as cli_main
from repro.verify import (
    DEFAULT_FAMILIES,
    SCENARIOS,
    TEMPLATES,
    Template,
    enumerate_interleavings,
    run_exhaustive,
)
from repro.verify.exhaustive import schedule_steps

_R = ("R", 0, 0)
_W = ("W", 0, 0)
_B = ("B", 0, 0)
_U = ("U", 0, 0)


class TestEnumerator:
    def test_no_barriers_is_binomial(self):
        # Free interleaving of n0+n1 ops: C(n0+n1, n0) schedules.
        for n0, n1 in [(1, 1), (2, 2), (3, 2), (4, 4)]:
            got = list(enumerate_interleavings((_R,) * n0, (_W,) * n1))
            assert len(got) == math.comb(n0 + n1, n0)
            assert len(set(got)) == len(got)  # no duplicates
            for schedule in got:
                assert schedule.count(0) == n0 and schedule.count(1) == n1

    def test_barrier_feasibility(self):
        # (W B R) x (W B R): both pre-barrier ops precede both post-barrier
        # ops, so only C(2,1)^2 * (barrier pair orders: 2) = 8... enumerate
        # and check the invariant directly instead of trusting arithmetic.
        core0 = (_W, _B, _R)
        core1 = (_W, _B, _R)
        schedules = list(enumerate_interleavings(core0, core1))
        assert len(set(schedules)) == len(schedules)
        for schedule in schedules:
            # Replay the schedule tracking barrier arrivals: no core may
            # pass its k-th barrier before the other core arrives at k.
            idx = [0, 0]
            barriers = [0, 0]
            for core in schedule:
                prog = (core0, core1)[core]
                op = prog[idx[core]]
                assert barriers[core] <= barriers[1 - core]
                if op[0] == "B":
                    barriers[core] += 1
                idx[core] += 1
        # And the count must be strictly below the unconstrained C(6,3)=20.
        assert 0 < len(schedules) < math.comb(6, 3)

    def test_matches_report_counts(self):
        # The counts the full run reports are exactly the enumerator's.
        report = run_exhaustive(ops=3, max_violations=1)
        for template in TEMPLATES:
            if template.max_ops > 3:
                assert template.name in report.skipped_templates
                continue
            expected = len(list(enumerate_interleavings(template.core0, template.core1)))
            assert report.interleavings[template.name] == expected

    def test_schedule_steps_materializes_in_order(self):
        template = Template("t", (_W, ("R", 1, 1)), (("R", 0, 4),))
        steps = schedule_steps(template, (0, 1, 0))
        assert steps == ((0, "W", 0, 0), (1, "R", 0, 4), (0, "R", 1, 1))


class TestTemplateValidation:
    def test_single_writer_per_word_enforced(self):
        with pytest.raises(ConfigError, match="single-writer"):
            Template("bad", (_W,), (("W", 0, 0),))

    def test_disjoint_words_allowed(self):
        Template("ok", (_W,), (("W", 0, 4),))

    def test_unbalanced_barriers_rejected(self):
        with pytest.raises(ConfigError, match="unbalanced"):
            Template("bad", (_W, _B, _R), (_R,))

    def test_inert_release_placements_rejected(self):
        for prog in [(_U, _R), (_R, _U), (_W, _U, _U, _R)]:
            with pytest.raises(ConfigError, match="inert release"):
                Template("bad", prog, (_R,))

    def test_op_budget_enforced(self):
        with pytest.raises(ConfigError, match="max 6"):
            Template("bad", (_R,) * 7, (_R,))

    def test_shipped_templates_cover_the_budget_range(self):
        assert all(t.max_ops <= 6 for t in TEMPLATES)
        assert any(t.max_ops <= 3 for t in TEMPLATES)  # smoke tier non-empty
        assert any(t.max_ops > 4 for t in TEMPLATES)  # full tier adds depth


class TestMinimizer:
    def test_greedy_drop_to_failure_core(self, monkeypatch):
        import repro.verify.exhaustive as ex

        needed = {(0, "W", 0, 0), (1, "R", 0, 0)}

        def fake_check(steps, scenario, families):
            return ("fam", "boom") if needed <= set(steps) else None

        monkeypatch.setattr(ex, "_check_steps", fake_check)
        steps = (
            (0, "W", 0, 0),
            (0, "R", 1, 1),
            (1, "W", 1, 5),
            (1, "R", 0, 0),
            (0, "R", 0, 4),
        )
        minimized = ex.minimize_steps(steps, SCENARIOS[0], DEFAULT_FAMILIES)
        assert set(minimized) == needed and len(minimized) == 2


class TestFullRuns:
    def test_all_families_agree_on_small_templates(self):
        report = run_exhaustive(ops=3)
        assert report.ok, report.summary()
        assert report.total_runs > 0
        assert set(report.family_labels) >= {
            "baseline", "adaptive", "victim", "dls", "neat", "neat-release", "phase",
        }

    def test_report_round_trips_to_json(self):
        report = run_exhaustive(ops=2)
        blob = json.loads(json.dumps(report.to_dict()))
        assert blob["ops_limit"] == 2
        assert blob["violations"] == []
        assert blob["total_runs"] == report.total_runs

    def test_replay_is_deterministic(self):
        from repro.verify.exhaustive import _replay

        template = next(t for t in TEMPLATES if t.name == "word-ping-pong")
        schedule = next(enumerate_interleavings(template.core0, template.core1))
        steps = schedule_steps(template, schedule)
        label, proto = DEFAULT_FAMILIES[0]
        assert _replay(steps, SCENARIOS[0], proto) == _replay(
            steps, SCENARIOS[0], proto
        )


class TestCheckExhaustiveCli:
    def test_smoke_budget_passes(self, capsys):
        assert cli_main(["check-exhaustive", "--ops", "2"]) == 0
        out = capsys.readouterr().out
        assert "zero violations" in out

    def test_json_report(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert cli_main(["check-exhaustive", "--ops", "2", "--json", str(path)]) == 0
        blob = json.loads(path.read_text())
        assert blob["violations"] == [] and blob["ops_limit"] == 2

    def test_bad_ops_rejected(self, capsys):
        assert cli_main(["check-exhaustive", "--ops", "0"]) == 1
