"""Golden-model differential harness: all six protocol families, one trace.

The strongest cross-protocol check in the suite.  A seeded random
multithreaded access sequence is driven through every protocol family -
baseline, adaptive, victim, dls, neat, phase - in verify mode, where:

* each engine checks every read against its own golden memory maintained in
  coherence order and asserts its structural invariants (SWMR for the
  directory families), raising ``CoherenceError`` on the first violation;
* at the end of the trace, ``check_final_state`` walks every line the golden
  memory knows and asserts the architecturally observable value (MODIFIED L1
  copy > home L2 line > DRAM image) matches - no write may be lost even if
  never re-read;
* finally the engines are compared *against each other*: because every
  engine services the identical access sequence and derives write values
  from the same per-engine token counter, their golden images and their
  observable final memory must be bit-identical across protocols.  Any
  divergence means one family serviced an access out of order or dropped a
  token.

Every failure message leads with the generator seed, so any counterexample
reproduces with ``run_differential(seed)`` from a REPL.

The trace generator and ``run_differential`` are importable - new protocol
families get differential coverage by adding one entry to ``ENGINES``.

The seed set is environment-overridable (``REPRO_DIFF_SEEDS=7,19``) so CI
can pin cheap fixed seeds while local runs take the default four.  A set-but-
unparseable value fails loudly: silently running ZERO seeds would turn the
whole harness into a green no-op.

On failure the harness delta-debugs the random trace down to a minimized
reproduction and prints it - the same instrument ``repro.verify.exhaustive``
applies to its enumerated interleavings.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.common.errors import CoherenceError
from repro.common.params import (
    ArchConfig,
    CacheGeometry,
    ProtocolConfig,
    baseline_protocol,
    dls_protocol,
    neat_protocol,
    phase_protocol,
    victim_replication_protocol,
)
from repro.protocol.engine import make_engine

BASE = 1 << 30
LINE = 64
WORD = 8
NUM_CORES = 4
NUM_LINES = 24
STEPS = 700

#: The four accelerator combinations (mesh x sched, each on/off): the
#: trace-level differential must hold under every one, and on compiler-less
#: hosts all four collapse to the pure-Python fallback.
KERNEL_COMBOS = {
    "mesh+sched": (),
    "sched-only": ("REPRO_NO_ACCEL_MESH",),
    "mesh-only": ("REPRO_NO_ACCEL_SCHED",),
    "fallback": ("REPRO_NO_ACCEL_MESH", "REPRO_NO_ACCEL_SCHED"),
}


@pytest.fixture(params=sorted(KERNEL_COMBOS), ids=sorted(KERNEL_COMBOS))
def kernel_combo(request, monkeypatch):
    for env in ("REPRO_NO_ACCEL_MESH", "REPRO_NO_ACCEL_SCHED"):
        monkeypatch.delenv(env, raising=False)
    for env in KERNEL_COMBOS[request.param]:
        monkeypatch.setenv(env, "1")
    return request.param


#: The six protocol families under differential test.
ENGINES: dict[str, ProtocolConfig] = {
    "baseline": baseline_protocol(),
    "adaptive": ProtocolConfig(pct=2, classifier="limited", limited_k=2),
    "victim": victim_replication_protocol(),
    "dls": dls_protocol(),
    "neat": neat_protocol(),
    "phase": phase_protocol(),
}


def tiny_arch() -> ArchConfig:
    """4 cores with tiny caches so evictions and churn are constant."""
    return ArchConfig(
        num_cores=NUM_CORES,
        num_memory_controllers=2,
        l1d=CacheGeometry(1, 2, 1),
        l2=CacheGeometry(2, 2, 7),
    )


def generate_trace(seed: int, steps: int = STEPS) -> list[tuple[int, bool, int]]:
    """Seeded random access sequence: (core, is_write, address) records.

    Mixes the patterns that stress coherence: a small hot pool of
    write-shared lines (invalidation/self-invalidation churn), a read-mostly
    shared region (sharer accumulation, replication) and per-core private
    strides (R-NUCA private pages, capacity evictions).
    """
    rng = random.Random(seed)
    hot = [rng.randrange(NUM_LINES) for _ in range(4)]
    trace = []
    for _ in range(steps):
        core = rng.randrange(NUM_CORES)
        roll = rng.random()
        if roll < 0.35:  # hot write-shared pool
            line = rng.choice(hot)
            is_write = rng.random() < 0.5
        elif roll < 0.75:  # shared read-mostly region
            line = rng.randrange(NUM_LINES)
            is_write = rng.random() < 0.1
        else:  # private stride, far from the shared region
            line = NUM_LINES + core * 64 + rng.randrange(12)
            is_write = rng.random() < 0.4
        address = BASE + line * LINE + rng.randrange(LINE // WORD) * WORD
        trace.append((core, is_write, address))
    return trace


def _drive_trace(trace: list[tuple[int, bool, int]]):
    """Drive one fixed access sequence through every family.

    Returns ``(error-or-None, engines)``: the first failure as a message
    string (per-family coherence/final-state violation, or cross-protocol
    golden/observable divergence), plus the engines completed so far.
    """
    engines: dict[str, object] = {}
    for name, proto in ENGINES.items():
        engine = make_engine(tiny_arch(), proto, verify=True)
        now = 0.0
        for step, (core, is_write, address) in enumerate(trace):
            try:
                result = engine.access(core, is_write, address, now)
            except CoherenceError as exc:
                return (
                    f"protocol {name!r} violated coherence at step {step} "
                    f"({'W' if is_write else 'R'} core {core} "
                    f"addr {address:#x}): {exc}"
                ), engines
            now += 1.0 + result.latency
        try:
            engine.check_final_state()
        except CoherenceError as exc:
            return (
                f"protocol {name!r} lost a write (final-state divergence): {exc}"
            ), engines
        engines[name] = engine

    # ---- cross-protocol equivalence: same trace, same observable memory.
    reference = engines["baseline"]
    ref_lines = sorted(reference.golden.lines())
    for name, engine in engines.items():
        lines = sorted(engine.golden.lines())
        if lines != ref_lines:
            return (
                f"protocol {name!r} touched different lines than baseline: "
                f"{set(lines) ^ set(ref_lines)}"
            ), engines
        for line in ref_lines:
            expected = reference.golden.line_snapshot(line)
            got = engine.golden.line_snapshot(line)
            if got != expected:
                return (
                    f"golden-image divergence at line {line:#x} between "
                    f"baseline and {name!r}: {expected} vs {got}"
                ), engines
            observable = engine.final_line_value(line)
            if observable != expected:
                return (
                    f"final-memory divergence at line {line:#x} for {name!r}: "
                    f"observable {observable}, expected {expected}"
                ), engines
    return None, engines


def minimize_trace(trace: list[tuple[int, bool, int]]) -> list[tuple[int, bool, int]]:
    """Delta-debug a failing access sequence: greedily drop records while
    some family still fails.  Only ever called on a failing trace, so the
    quadratic worst case is paid exactly when there is a bug to report."""
    current = list(trace)
    changed = True
    while changed:
        changed = False
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + 1:]
            if candidate and _drive_trace(candidate)[0] is not None:
                current = candidate
                changed = True
            else:
                index += 1
    return current


def format_trace(trace: list[tuple[int, bool, int]]) -> str:
    """One record per line, REPL-pasteable next to ``run_differential``."""
    return "\n".join(
        f"  {index:3d}. core{core} {'write' if is_write else 'read '} {address:#x}"
        for index, (core, is_write, address) in enumerate(trace)
    )


def run_differential(seed: int) -> dict[str, object]:
    """Drive one seeded trace through all six families; return the engines.

    Raises ``AssertionError`` (seed in the message, minimized reproduction
    appended) on any ``CoherenceError`` or cross-protocol divergence.
    """
    trace = generate_trace(seed)
    error, engines = _drive_trace(trace)
    if error is not None:
        minimized = minimize_trace(trace)
        raise AssertionError(
            f"seed={seed}: {error}\n"
            f"minimized reproduction ({len(minimized)} of {len(trace)} "
            f"records):\n{format_trace(minimized)}"
        )
    return engines


def _seed_set() -> list[int]:
    """``REPRO_DIFF_SEEDS`` as a seed list, or the default four.

    A set-but-useless value is a CI configuration bug: empty/whitespace
    values and non-integer entries fail loudly here rather than silently
    parametrizing the differential test over ZERO seeds.
    """
    raw = os.environ.get("REPRO_DIFF_SEEDS")
    if raw is None:
        return [0, 1, 2, 3]
    seeds = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue  # tolerate stray commas: "7,19," means [7, 19]
        try:
            seeds.append(int(part))
        except ValueError:
            raise ValueError(
                f"REPRO_DIFF_SEEDS entry {part!r} is not an integer "
                f"(full value: {raw!r})"
            ) from None
    if not seeds:
        raise ValueError(
            f"REPRO_DIFF_SEEDS is set but names no seeds: {raw!r} "
            "(unset it for the default seed set)"
        )
    return seeds


# ======================================================================
# Trace-level differential: full Simulator runs, locks/barriers included.
# ======================================================================
#
# The engine-level harness above drives a fixed access order, so golden
# images must agree across protocols trivially.  Full simulations schedule
# cores by their (protocol-dependent!) clocks, so cross-family equivalence
# holds only for values that synchronization pins down.  Write tokens are
# derived per core (``count * stride + core``), which makes a write's
# *value* independent of how other cores interleaved; the final image of a
# word is then family-invariant whenever its last writer is - i.e. for any
# word written by a single thread per phase (barriers order phases; locked
# regions here write disjoint per-core slots, so lock-acquisition order
# does not matter).  ``build_sync_stress`` is exactly that kind of trace.


def build_sync_stress(num_cores: int = NUM_CORES, rounds: int = 3):
    """Barrier-phased, lock-protected, single-writer-per-word trace.

    Per round: each thread writes its own slice of a shared array (read by
    everyone next phase), updates its own slot of a lock-protected shared
    structure, reads a neighbour's slice (sharing misses / invalidation or
    self-invalidation churn) and re-reads its private scratch (capacity
    pressure).  Every conflicting write pair is barrier-ordered, so the
    final memory image is schedule-independent.
    """
    from repro.workloads.base import TraceBuilder

    builder = TraceBuilder("sync-stress", num_cores)
    shared = builder.address_space.alloc("shared", num_cores * LINE)
    slots = builder.address_space.alloc("slots", num_cores * LINE)
    scratch = [
        builder.address_space.alloc(f"scratch{tid}", 4 * LINE) for tid in range(num_cores)
    ]
    lock_id = 1
    for _round in range(rounds):
        for tid in range(num_cores):
            thread = builder.thread(tid)
            # Own slice of the shared array: single writer per word.
            for word in range(LINE // WORD):
                thread.work(1)
                thread.write(shared + tid * LINE + word * WORD)
            # Lock-protected update of the thread's OWN slot: acquisition
            # order varies per protocol, final values do not.
            thread.lock(lock_id)
            thread.write(slots + tid * LINE)
            thread.read(slots + ((tid + 1) % num_cores) * LINE)
            thread.unlock(lock_id)
        builder.barrier_all()
        for tid in range(num_cores):
            thread = builder.thread(tid)
            # Neighbour's slice: cross-core sharing after the barrier.
            neighbour = (tid + 1) % num_cores
            for word in range(LINE // WORD):
                thread.work(1)
                thread.read(shared + neighbour * LINE + word * WORD)
            for i in range(4):
                thread.work(2)
                thread.write(scratch[tid] + i * LINE)
                thread.read(scratch[tid] + i * LINE)
        builder.barrier_all()
    return builder.build()


def run_trace_differential(trace=None) -> dict[str, object]:
    """Full-simulator differential: verify-mode runs of all six families.

    Returns the per-family ``Simulator.last_engine``; raises
    ``AssertionError`` on any coherence violation, lost write, or
    cross-family golden/observable-memory divergence.
    """
    from repro.sim.multicore import Simulator

    if trace is None:
        trace = build_sync_stress()
    engines = {}
    for name, proto in ENGINES.items():
        sim = Simulator(tiny_arch(), proto, verify=True, warmup=False)
        try:
            sim.run(trace)
        except CoherenceError as exc:
            raise AssertionError(
                f"protocol {name!r} violated coherence on trace "
                f"{trace.name!r}: {exc}"
            ) from exc
        engines[name] = sim.last_engine

    reference = engines["baseline"]
    ref_lines = sorted(reference.golden.lines())
    for name, engine in engines.items():
        lines = sorted(engine.golden.lines())
        assert lines == ref_lines, (
            f"protocol {name!r} wrote different lines than baseline on "
            f"{trace.name!r}: {set(lines) ^ set(ref_lines)}"
        )
        for line in ref_lines:
            expected = reference.golden.line_snapshot(line)
            got = engine.golden.line_snapshot(line)
            assert got == expected, (
                f"golden-image divergence at line {line:#x} between "
                f"baseline and {name!r} on {trace.name!r}: {expected} vs {got}"
            )
            observable = engine.final_line_value(line)
            assert observable == expected, (
                f"final-memory divergence at line {line:#x} for {name!r} "
                f"on {trace.name!r}: observable {observable}, expected {expected}"
            )
    return engines


class TestTraceLevelDifferential:
    def test_six_families_agree_on_sync_stress_trace(self, kernel_combo):
        """Locks + barriers included: full runs, identical final memory -
        under every accelerator combination."""
        engines = run_trace_differential()
        assert set(engines) == set(ENGINES)

    def test_sync_stress_exercises_synchronization(self):
        trace = build_sync_stress()
        ops = [op for tid in range(trace.num_cores) for op in trace.ops[tid]]
        from repro.common.types import Op

        assert ops.count(int(Op.LOCK)) == NUM_CORES * 3
        assert ops.count(int(Op.BARRIER)) == NUM_CORES * 6

    def test_workload_traces_verify_across_families(self):
        """Registry workloads (locks/barriers included) under full verify.

        Per-family golden verification plus ``check_final_state`` runs
        inside ``Simulator.run``; across families the *set of written
        lines* is trace-determined and must agree exactly (word-level
        values may differ when workload kernels race by design).
        """
        from repro.common.params import ArchConfig, CacheGeometry
        from repro.sim.multicore import Simulator
        from repro.workloads.registry import load_workload

        arch = ArchConfig(
            num_cores=NUM_CORES,
            num_memory_controllers=2,
            l1d=CacheGeometry(1, 2, 1),
            l2=CacheGeometry(2, 2, 7),
        )
        trace = load_workload("tsp", arch, scale="tiny")
        written = None
        for name, proto in ENGINES.items():
            sim = Simulator(arch, proto, verify=True, warmup=False)
            try:
                sim.run(trace)
            except CoherenceError as exc:
                raise AssertionError(f"{name!r} failed verification on tsp: {exc}") from exc
            lines = frozenset(sim.last_engine.golden.lines())
            if written is None:
                written = lines
            else:
                assert lines == written, (
                    f"{name!r} wrote a different line set than baseline on tsp"
                )


@pytest.mark.parametrize("seed", _seed_set())
def test_six_protocols_agree_on_random_traces(seed):
    """No CoherenceError, no lost write, no cross-protocol divergence."""
    engines = run_differential(seed)
    assert set(engines) == set(ENGINES)


def test_every_family_exercised_nontrivially():
    """The generated traffic actually stresses each family's machinery."""
    engines = run_differential(0)
    assert engines["baseline"].inval_histogram.total > 0  # invalidations fired
    assert engines["victim"].replicas_created > 0  # replicas were made
    assert engines["dls"].miss_stats.hits == 0  # DLS never caches
    assert engines["dls"].miss_stats.misses == STEPS
    neat = engines["neat"]
    assert neat.self_invalidations > 0  # stale copies were retired
    assert neat.write_throughs > 0
    assert neat.miss_stats.hits > 0  # ...but read caching still works
    phase = engines["phase"]
    assert phase.phase_promotions > 0  # write-shared lines were promoted
    assert phase.phase_word_accesses > 0  # ...and then serviced remotely


class TestSeedSetParsing:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_DIFF_SEEDS", raising=False)
        assert _seed_set() == [0, 1, 2, 3]

    def test_parses_csv_with_spaces(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIFF_SEEDS", " 7 , 19 ")
        assert _seed_set() == [7, 19]

    def test_stray_commas_tolerated(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIFF_SEEDS", "7,19,")
        assert _seed_set() == [7, 19]

    @pytest.mark.parametrize("raw", ["", "   ", ",", " , "])
    def test_zero_seed_values_fail_loudly(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_DIFF_SEEDS", raw)
        with pytest.raises(ValueError, match="REPRO_DIFF_SEEDS"):
            _seed_set()

    def test_non_integer_entry_names_the_culprit(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIFF_SEEDS", "7,nineteen")
        with pytest.raises(ValueError, match="'nineteen' is not an integer"):
            _seed_set()


class TestFailureMinimization:
    def test_failing_trace_is_minimized_and_printed(self, monkeypatch):
        import tests.properties.test_differential as mod

        # Stand-in failure predicate: the trace fails iff it contains BOTH
        # marker records; everything else is noise the minimizer must shed.
        markers = {(0, True, BASE), (1, False, BASE)}

        def fake_drive(trace):
            if markers <= set(trace):
                return "synthetic divergence", {}
            return None, {}

        monkeypatch.setattr(mod, "_drive_trace", fake_drive)
        noise = [(2, False, BASE + 64 * k) for k in range(5)]
        trace = noise[:2] + [(0, True, BASE)] + noise[2:] + [(1, False, BASE)]
        minimized = mod.minimize_trace(trace)
        assert set(minimized) == markers and len(minimized) == 2
        with pytest.raises(AssertionError) as excinfo:
            monkeypatch.setattr(mod, "generate_trace", lambda seed: list(trace))
            mod.run_differential(99)
        message = str(excinfo.value)
        assert "seed=99" in message
        assert "minimized reproduction (2 of 7 records)" in message
        assert "core0 write" in message and "core1 read" in message


def test_divergence_is_detected():
    """The harness is not vacuous: a corrupted word trips the final check."""
    engines = run_differential(1)
    engine = engines["neat"]
    line = sorted(engine.golden.lines())[0]
    home = engine._home_of_line.get(line)
    victim = None
    if home is not None:
        victim = engine.l2[home].lookup(line)
    if victim is None or victim.data is None:
        pytest.skip("line not resident at its home in this realization")
    victim.data[0] ^= 0x1
    # A MODIFIED L1 copy would shadow the corrupted home line in
    # final_line_value; Neat has none, so the corruption must surface.
    with pytest.raises(CoherenceError):
        engine.check_final_state()
