"""Golden-model differential harness: all five protocol families, one trace.

The strongest cross-protocol check in the suite.  A seeded random
multithreaded access sequence is driven through every protocol family -
baseline, adaptive, victim, dls, neat - in verify mode, where:

* each engine checks every read against its own golden memory maintained in
  coherence order and asserts its structural invariants (SWMR for the
  directory families), raising ``CoherenceError`` on the first violation;
* at the end of the trace, ``check_final_state`` walks every line the golden
  memory knows and asserts the architecturally observable value (MODIFIED L1
  copy > home L2 line > DRAM image) matches - no write may be lost even if
  never re-read;
* finally the engines are compared *against each other*: because every
  engine services the identical access sequence and derives write values
  from the same per-engine token counter, their golden images and their
  observable final memory must be bit-identical across protocols.  Any
  divergence means one family serviced an access out of order or dropped a
  token.

Every failure message leads with the generator seed, so any counterexample
reproduces with ``run_differential(seed)`` from a REPL.

The trace generator and ``run_differential`` are importable - new protocol
families get differential coverage by adding one entry to ``ENGINES``.

The seed set is environment-overridable (``REPRO_DIFF_SEEDS=7,19``) so CI
can pin cheap fixed seeds while local runs take the default four.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.common.errors import CoherenceError
from repro.common.params import (
    ArchConfig,
    CacheGeometry,
    ProtocolConfig,
    baseline_protocol,
    dls_protocol,
    neat_protocol,
    victim_replication_protocol,
)
from repro.protocol.engine import make_engine

BASE = 1 << 30
LINE = 64
WORD = 8
NUM_CORES = 4
NUM_LINES = 24
STEPS = 700

#: The five protocol families under differential test.
ENGINES: dict[str, ProtocolConfig] = {
    "baseline": baseline_protocol(),
    "adaptive": ProtocolConfig(pct=2, classifier="limited", limited_k=2),
    "victim": victim_replication_protocol(),
    "dls": dls_protocol(),
    "neat": neat_protocol(),
}


def tiny_arch() -> ArchConfig:
    """4 cores with tiny caches so evictions and churn are constant."""
    return ArchConfig(
        num_cores=NUM_CORES,
        num_memory_controllers=2,
        l1d=CacheGeometry(1, 2, 1),
        l2=CacheGeometry(2, 2, 7),
    )


def generate_trace(seed: int, steps: int = STEPS) -> list[tuple[int, bool, int]]:
    """Seeded random access sequence: (core, is_write, address) records.

    Mixes the patterns that stress coherence: a small hot pool of
    write-shared lines (invalidation/self-invalidation churn), a read-mostly
    shared region (sharer accumulation, replication) and per-core private
    strides (R-NUCA private pages, capacity evictions).
    """
    rng = random.Random(seed)
    hot = [rng.randrange(NUM_LINES) for _ in range(4)]
    trace = []
    for _ in range(steps):
        core = rng.randrange(NUM_CORES)
        roll = rng.random()
        if roll < 0.35:  # hot write-shared pool
            line = rng.choice(hot)
            is_write = rng.random() < 0.5
        elif roll < 0.75:  # shared read-mostly region
            line = rng.randrange(NUM_LINES)
            is_write = rng.random() < 0.1
        else:  # private stride, far from the shared region
            line = NUM_LINES + core * 64 + rng.randrange(12)
            is_write = rng.random() < 0.4
        address = BASE + line * LINE + rng.randrange(LINE // WORD) * WORD
        trace.append((core, is_write, address))
    return trace


def run_differential(seed: int) -> dict[str, object]:
    """Drive one seeded trace through all five families; return the engines.

    Raises ``AssertionError`` (seed in the message) on any ``CoherenceError``
    or cross-protocol divergence.
    """
    trace = generate_trace(seed)
    engines = {}
    for name, proto in ENGINES.items():
        engine = make_engine(tiny_arch(), proto, verify=True)
        now = 0.0
        for step, (core, is_write, address) in enumerate(trace):
            try:
                result = engine.access(core, is_write, address, now)
            except CoherenceError as exc:
                raise AssertionError(
                    f"seed={seed}: protocol {name!r} violated coherence at "
                    f"step {step} ({'W' if is_write else 'R'} core {core} "
                    f"addr {address:#x}): {exc}"
                ) from exc
            now += 1.0 + result.latency
        try:
            engine.check_final_state()
        except CoherenceError as exc:
            raise AssertionError(
                f"seed={seed}: protocol {name!r} lost a write "
                f"(final-state divergence): {exc}"
            ) from exc
        engines[name] = engine

    # ---- cross-protocol equivalence: same trace, same observable memory.
    reference = engines["baseline"]
    ref_lines = sorted(reference.golden.lines())
    for name, engine in engines.items():
        lines = sorted(engine.golden.lines())
        assert lines == ref_lines, (
            f"seed={seed}: protocol {name!r} touched different lines than "
            f"baseline: {set(lines) ^ set(ref_lines)}"
        )
        for line in ref_lines:
            expected = reference.golden.line_snapshot(line)
            got = engine.golden.line_snapshot(line)
            assert got == expected, (
                f"seed={seed}: golden-image divergence at line {line:#x} "
                f"between baseline and {name!r}: {expected} vs {got}"
            )
            observable = engine.final_line_value(line)
            assert observable == expected, (
                f"seed={seed}: final-memory divergence at line {line:#x} "
                f"for {name!r}: observable {observable}, expected {expected}"
            )
    return engines


def _seed_set() -> list[int]:
    raw = os.environ.get("REPRO_DIFF_SEEDS")
    if raw:
        return [int(part) for part in raw.split(",") if part.strip()]
    return [0, 1, 2, 3]


@pytest.mark.parametrize("seed", _seed_set())
def test_five_protocols_agree_on_random_traces(seed):
    """No CoherenceError, no lost write, no cross-protocol divergence."""
    engines = run_differential(seed)
    assert set(engines) == set(ENGINES)


def test_every_family_exercised_nontrivially():
    """The generated traffic actually stresses each family's machinery."""
    engines = run_differential(0)
    assert engines["baseline"].inval_histogram.total > 0  # invalidations fired
    assert engines["victim"].replicas_created > 0  # replicas were made
    assert engines["dls"].miss_stats.hits == 0  # DLS never caches
    assert engines["dls"].miss_stats.misses == STEPS
    neat = engines["neat"]
    assert neat.self_invalidations > 0  # stale copies were retired
    assert neat.write_throughs > 0
    assert neat.miss_stats.hits > 0  # ...but read caching still works


def test_divergence_is_detected():
    """The harness is not vacuous: a corrupted word trips the final check."""
    engines = run_differential(1)
    engine = engines["neat"]
    line = sorted(engine.golden.lines())[0]
    home = engine._home_of_line.get(line)
    victim = None
    if home is not None:
        victim = engine.l2[home].lookup(line)
    if victim is None or victim.data is None:
        pytest.skip("line not resident at its home in this realization")
    victim.data[0] ^= 0x1
    # A MODIFIED L1 copy would shadow the corrupted home line in
    # final_line_value; Neat has none, so the corruption must surface.
    with pytest.raises(CoherenceError):
        engine.check_final_state()
