"""Failure injection: corrupted state and malformed inputs must raise the
documented error types, not corrupt results silently."""

from __future__ import annotations

from array import array

import pytest

from repro.common.errors import CoherenceError, ConfigError, SimulationError, TraceError
from repro.common.params import ArchConfig, CacheGeometry, ProtocolConfig, baseline_protocol
from repro.common.types import Op
from repro.protocol.engine import ProtocolEngine
from repro.sim.multicore import Simulator
from repro.workloads.base import Trace, TraceBuilder
from tests.protocol.test_engine import BASE, LINE, share_page, small_arch


def raw_trace(name: str, num_cores: int, streams) -> Trace:
    """Build a columnar trace *without* validation (failure injection only)."""
    return Trace._rebuild(
        name,
        num_cores,
        [array("q", [r[0] for r in s]) for s in streams],
        [array("q", [r[1] for r in s]) for s in streams],
        [array("q", [r[2] for r in s]) for s in streams],
        (0, 0, 0),
    )


class TestConfigValidation:
    def test_non_square_mesh_rejected(self):
        with pytest.raises(ConfigError, match="perfect square"):
            ArchConfig(num_cores=48)

    def test_more_controllers_than_tiles_rejected(self):
        with pytest.raises(ConfigError, match="controllers"):
            ArchConfig(num_cores=16, num_memory_controllers=17)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigError, match="power of two"):
            CacheGeometry(3, 2, 1)

    def test_rat_max_below_pct_rejected(self):
        with pytest.raises(ConfigError, match="rat_max"):
            ProtocolConfig(pct=8, rat_max=4)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigError, match="unknown protocol"):
            ProtocolConfig(protocol="magic")


class TestCoherenceCorruption:
    def test_directory_listing_missing_l1_copy_raises(self):
        engine = ProtocolEngine(small_arch(), baseline_protocol(), verify=True)
        share_page(engine)
        engine.access(0, False, BASE, 100.0)
        engine.access(1, False, BASE, 200.0)
        # Corrupt: core 1's copy vanishes without the directory noticing.
        engine.l1d[1].remove(BASE // LINE)
        with pytest.raises(CoherenceError, match="but L1 empty"):
            engine.access(2, True, BASE, 300.0)

    def test_swmr_violation_detected(self):
        engine = ProtocolEngine(small_arch(), baseline_protocol(), verify=True)
        engine.access(0, True, BASE, 0.0)
        entry = engine.directory_entry(BASE // LINE)
        entry.sharers.add(5)  # corrupt: phantom sharer next to an owner
        with pytest.raises(CoherenceError, match="SWMR"):
            entry.check_invariants()

    def test_unknown_home_on_eviction_raises(self):
        engine = ProtocolEngine(small_arch(), baseline_protocol())
        engine.access(0, False, BASE, 0.0)
        engine._home_of_line.clear()  # corrupt the home map
        with pytest.raises(SimulationError, match="unknown home"):
            # Force an eviction in BASE's set.
            engine.access(0, False, BASE + 8 * LINE, 100.0)
            engine.access(0, False, BASE + 16 * LINE, 200.0)


class TestTraceValidation:
    def test_core_count_mismatch_raises(self):
        trace = TraceBuilder("two", 4).build()
        sim = Simulator(ArchConfig(num_cores=16, num_memory_controllers=4))
        with pytest.raises(SimulationError, match="built for 4 cores"):
            sim.run(trace)

    def test_unlock_without_hold_raises_at_build(self):
        with pytest.raises(TraceError, match="unlock of free lock"):
            Trace("bad", 1, [[(int(Op.UNLOCK), 1, 0)]])

    def test_unbalanced_lock_raises_at_build(self):
        with pytest.raises(TraceError, match="unbalanced"):
            Trace("bad", 1, [[(int(Op.LOCK), 1, 0)]])

    def test_mismatched_barriers_raise_at_build(self):
        streams = [[(int(Op.BARRIER), 0, 0)], []]
        with pytest.raises(TraceError, match="barrier sequence"):
            Trace("bad", 2, streams)

    def test_negative_work_raises_at_build(self):
        with pytest.raises(TraceError, match="negative work"):
            Trace("bad", 1, [[(int(Op.READ), 64, -1)]])

    def test_out_of_range_address_raises_at_build(self):
        with pytest.raises(TraceError, match="out of range"):
            Trace("bad", 1, [[(int(Op.READ), 1 << 60, 0)]])

    def test_runtime_unlock_of_unheld_lock_raises(self):
        # Build-time validation rejects unlock-before-lock, so the runtime
        # guard is defensive; bypass validation to prove it still fires.
        bad = raw_trace("bad", 16, [[(int(Op.UNLOCK), 1, 0)]] + [[] for _ in range(15)])
        sim = Simulator(small_arch(), baseline_protocol())
        with pytest.raises(SimulationError, match="does not hold"):
            sim.run(bad)


class TestDeadlockDetection:
    def test_unreleased_lock_blocks_and_is_reported(self):
        # Both threads end their streams fighting over lock 1 (thread 0
        # never releases): the simulator must report the deadlock instead
        # of silently dropping the parked thread.  Built unvalidated because
        # Trace validation (correctly) rejects unbalanced locks up front.
        region = 1 << 30
        streams = [
            [(int(Op.LOCK), 1, 0), (int(Op.READ), region, 0)],
            [(int(Op.LOCK), 1, 0), (int(Op.READ), region, 0)],
        ] + [[] for _ in range(14)]
        bad = raw_trace("deadlock", 16, streams)
        sim = Simulator(small_arch(), baseline_protocol())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(bad)
