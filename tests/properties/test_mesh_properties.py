"""Property-based tests for mesh topology, XY routing and broadcast trees."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.common.params import ArchConfig
from repro.network.mesh import MeshNetwork
from repro.network.messages import MsgType
from repro.network.topology import Mesh2D

MESH_SIZES = (16, 36, 64)
meshes = st.sampled_from([Mesh2D(n) for n in MESH_SIZES])


def tiles(mesh: Mesh2D):
    return st.integers(min_value=0, max_value=mesh.num_tiles - 1)


class TestRouting:
    @given(data=st.data())
    def test_route_length_is_manhattan_distance(self, data):
        mesh = data.draw(meshes)
        src = data.draw(tiles(mesh), label="src")
        dst = data.draw(tiles(mesh), label="dst")
        path = mesh.route(src, dst)
        width = mesh.width
        dx = abs(src % width - dst % width)
        dy = abs(src // width - dst // width)
        assert len(path) == dx + dy

    @given(data=st.data())
    def test_route_to_self_is_empty(self, data):
        mesh = data.draw(meshes)
        tile = data.draw(tiles(mesh))
        assert mesh.route(tile, tile) == ()

    @given(data=st.data())
    def test_xy_routing_is_deterministic(self, data):
        mesh = data.draw(meshes)
        src = data.draw(tiles(mesh))
        dst = data.draw(tiles(mesh))
        assert mesh.route(src, dst) == mesh.route(src, dst)

    @given(data=st.data())
    def test_xy_dimension_order(self, data):
        """XY routing exhausts X-dimension hops before any Y hop."""
        mesh = data.draw(meshes)
        src = data.draw(tiles(mesh))
        dst = data.draw(tiles(mesh))
        path = mesh.route(src, dst)
        width = mesh.width
        seen_y = False
        current = src
        for link in path:
            nxt = link % mesh.num_tiles  # link id encodes src*N + dst
            if abs(nxt - current) == width:
                seen_y = True
            else:
                assert not seen_y, "X hop after a Y hop violates XY order"
            current = nxt
        assert current == dst


class TestBroadcastTree:
    @given(data=st.data())
    def test_tree_spans_all_tiles(self, data):
        mesh = data.draw(meshes)
        root = data.draw(tiles(mesh))
        edges = mesh.broadcast_tree(root)
        reached = {root}
        for src, dst in edges:
            assert src in reached, "tree edges must be emitted parent-first"
            reached.add(dst)
        assert reached == set(range(mesh.num_tiles))

    @given(data=st.data())
    def test_tree_has_exactly_n_minus_1_edges(self, data):
        mesh = data.draw(meshes)
        root = data.draw(tiles(mesh))
        assert len(mesh.broadcast_tree(root)) == mesh.num_tiles - 1

    @given(data=st.data())
    def test_tree_edges_are_mesh_neighbours(self, data):
        mesh = data.draw(meshes)
        root = data.draw(tiles(mesh))
        width = mesh.width
        for src, dst in mesh.broadcast_tree(root):
            diff = abs(src - dst)
            assert diff == 1 or diff == width


class TestTimingProperties:
    @given(
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
        start=st.floats(min_value=0, max_value=1e6),
    )
    def test_unicast_arrival_never_before_start(self, src, dst, start):
        net = MeshNetwork(ArchConfig(num_cores=16, num_memory_controllers=4))
        assert net.unicast(src, dst, MsgType.READ_REQ, start) >= start

    @given(start=st.floats(min_value=0, max_value=1e6))
    def test_broadcast_reaches_every_tile_no_earlier_than_start(self, start):
        net = MeshNetwork(ArchConfig(num_cores=16, num_memory_controllers=4))
        arrivals = net.broadcast(5, MsgType.INV_BROADCAST, start)
        assert set(arrivals) == set(range(16))
        assert all(t >= start for t in arrivals.values())

    @given(
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
    )
    def test_longer_messages_arrive_no_earlier(self, src, dst):
        net = MeshNetwork(ArchConfig(num_cores=16, num_memory_controllers=4),
                          model_contention=False)
        header = net.unicast(src, dst, MsgType.READ_REQ, 0.0)
        line = net.unicast(src, dst, MsgType.LINE_REPLY, 0.0)
        assert line >= header

    @given(data=st.data())
    def test_contention_only_delays(self, data):
        """With contention on, arrivals are never earlier than without."""
        arch = ArchConfig(num_cores=16, num_memory_controllers=4)
        pairs = data.draw(
            st.lists(
                st.tuples(st.integers(0, 15), st.integers(0, 15)),
                min_size=1, max_size=30,
            )
        )
        contended = MeshNetwork(arch)
        free = MeshNetwork(arch, model_contention=False)
        t = 0.0
        for src, dst in pairs:
            a = contended.unicast(src, dst, MsgType.LINE_REPLY, t)
            b = free.unicast(src, dst, MsgType.LINE_REPLY, t)
            assert a >= b
            t += 1.0
