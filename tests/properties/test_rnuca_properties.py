"""Property-based tests for R-NUCA placement invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import addr as addrmod
from repro.common.params import ArchConfig
from repro.rnuca.placement import RNucaPlacement

ARCH = ArchConfig(num_cores=64)
LINES_PER_PAGE = ARCH.page_size // addrmod.LINE_SIZE

lines = st.integers(min_value=0, max_value=1 << 30)
cores = st.integers(min_value=0, max_value=ARCH.num_cores - 1)


class TestSharedHome:
    @given(line=lines)
    def test_home_is_a_valid_tile(self, line):
        placement = RNucaPlacement(ARCH)
        assert 0 <= placement.shared_home(line) < ARCH.num_cores

    @given(line=lines)
    def test_home_is_deterministic(self, line):
        a = RNucaPlacement(ARCH)
        b = RNucaPlacement(ARCH)
        assert a.shared_home(line) == b.shared_home(line)

    def test_hash_spreads_consecutive_lines(self):
        placement = RNucaPlacement(ARCH)
        homes = {placement.shared_home(line) for line in range(4096)}
        # 4096 consecutive lines must reach a large fraction of the chip.
        assert len(homes) > ARCH.num_cores // 2


class TestDataClassification:
    @given(line=lines, core=cores)
    def test_first_touch_places_private_at_requester(self, line, core):
        placement = RNucaPlacement(ARCH)
        home, flush = placement.data_home(line, core)
        assert home == core
        assert flush is None

    @given(line=lines, core=cores)
    def test_repeat_touch_by_owner_stays_private(self, line, core):
        placement = RNucaPlacement(ARCH)
        placement.data_home(line, core)
        home, flush = placement.data_home(line, core)
        assert home == core
        assert flush is None

    @given(line=lines, first=cores, second=cores)
    def test_second_core_reclassifies_to_shared_once(self, line, first, second):
        if first == second:
            return
        placement = RNucaPlacement(ARCH)
        placement.data_home(line, first)
        home, flush = placement.data_home(line, second)
        assert flush == first  # the old private slice must be flushed
        assert home == placement.shared_home(line)
        # The transition happens exactly once.
        again_home, again_flush = placement.data_home(line, first)
        assert again_flush is None
        assert again_home == home

    @given(line=lines, first=cores, second=cores)
    def test_all_lines_of_a_page_share_its_classification(self, line, first, second):
        if first == second:
            return
        placement = RNucaPlacement(ARCH)
        placement.data_home(line, first)
        placement.data_home(line, second)  # page now shared
        page_start = (line // LINES_PER_PAGE) * LINES_PER_PAGE
        sibling = page_start + (line + 1) % LINES_PER_PAGE
        home, flush = placement.data_home(sibling, first)
        assert home == placement.shared_home(sibling)
        assert flush is None  # the flush already happened for this page


class TestInstructionPlacement:
    @given(line=lines, core=cores)
    def test_instruction_home_within_cluster(self, line, core):
        placement = RNucaPlacement(ARCH)
        home = placement.instruction_home(line, core)
        assert home in placement.cluster_tiles(core)

    @given(line=lines, core=cores)
    def test_cluster_is_a_2x2_mesh_block(self, line, core):
        placement = RNucaPlacement(ARCH)
        tiles = placement.cluster_tiles(core)
        assert len(tiles) == ARCH.instruction_cluster_size
        assert core in tiles
        width = ARCH.mesh_width
        xs = sorted({t % width for t in tiles})
        ys = sorted({t // width for t in tiles})
        assert len(xs) == 2 and xs[1] - xs[0] == 1
        assert len(ys) == 2 and ys[1] - ys[0] == 1

    @given(core=cores)
    def test_rotational_interleaving_covers_the_cluster(self, core):
        placement = RNucaPlacement(ARCH)
        homes = {placement.instruction_home(line, core) for line in range(16)}
        assert homes == set(placement.cluster_tiles(core))

    @settings(max_examples=25, deadline=None)
    @given(line=lines, a=cores, b=cores)
    def test_same_cluster_cores_agree_on_instruction_home(self, line, a, b):
        placement = RNucaPlacement(ARCH)
        if placement.cluster_tiles(a) != placement.cluster_tiles(b):
            return
        assert placement.instruction_home(line, a) == placement.instruction_home(line, b)
