"""Ring-buffer contention-accounting properties (DESIGN.md section 8).

The windowed ring buffer replacing PR 3's flat epoch dict must be
*observationally invisible*: same departure times, same occupancy map, under
any traffic - including far-future reservations (DRAM replies scheduled
thousands of cycles ahead) that live in the overflow dict, and traffic that
then arrives "in the past" relative to those reservations.

Two properties pin it:

* **flit conservation** - every flit that crosses a link reserves exactly
  one cycle of capacity somewhere (window slot or overflow), so the total
  reserved capacity always equals ``link_flit_traversals``;
* **reference equivalence** - a randomized message stream produces
  bit-identical arrival times and an identical (epoch, link) -> occupancy
  map against a reference implementation of the PR-3 flat-dict model.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import accel as accel_pkg
from repro.common.params import ArchConfig
from repro.network.mesh import EPOCH_CYCLES, EPOCH_SHIFT, WINDOW_EPOCHS, MeshNetwork
from repro.network.messages import MsgType

ARCH16 = ArchConfig(num_cores=16, num_memory_controllers=4)

#: Every property in this module runs against BOTH traversal
#: implementations: the pure-Python ring buffer and the compiled kernel
#: (skipped where no compiler is available).  The kernel's contract is
#: bit-identity, so the same assertions pin both.
BOTH_IMPLS = pytest.mark.parametrize("impl", ["fallback", "accel"])


def make_net(impl: str, arch: ArchConfig = ARCH16) -> MeshNetwork:
    if impl == "accel" and accel_pkg.mesh_kernel_class() is None:
        pytest.skip("compiled mesh kernel unavailable")
    return MeshNetwork(arch, accel=(impl == "accel"))


class ReferenceEpochModel:
    """The PR-3 contention model: one flat dict keyed (epoch, link).

    Deliberately transcribed from the pre-ring-buffer ``MeshNetwork`` (flat
    dict, per-link Python loop) so the equivalence property compares the
    ring buffer against the exact semantics it replaced.
    """

    def __init__(self, net: MeshNetwork) -> None:
        self.net = net
        self.use: dict[tuple[int, int], int] = {}
        self.hop = net.arch.hop_latency

    def traverse_path(self, path: tuple, t_head: float, flits: int) -> float:
        """PR 3's inlined unicast loop: one dict probe per link, a shadow
        integer clock advanced by the (integral) hop latency per link."""
        links = path[0]  # reserved-path descriptor: (links, hops, span, limit)
        if not links:
            return t_head
        hop = self.hop
        use = self.use
        t_int = int(t_head)
        for link in links:
            epoch = t_int >> EPOCH_SHIFT
            used = use.get((epoch, link), 0)
            if used + flits <= EPOCH_CYCLES:
                use[(epoch, link)] = used + flits
                t_head += hop
                t_int += hop
            else:
                t_head = self._congested(link, epoch, t_head, flits) + hop
                t_int = int(t_head)
        return t_head + (flits - 1)

    def _congested(self, link: int, epoch: int, t_head: float, flits: int) -> float:
        use = self.use
        first = epoch
        while use.get((epoch, link), 0) >= EPOCH_CYCLES:
            epoch += 1
        depart = t_head if epoch == first else float(epoch * EPOCH_CYCLES)
        remaining = flits
        while remaining > 0:
            used = use.get((epoch, link), 0)
            take = EPOCH_CYCLES - used
            if take > remaining:
                take = remaining
            use[(epoch, link)] = used + take
            remaining -= take
            epoch += 1
        return depart

    def occupancy_map(self) -> dict[tuple[int, int], int]:
        return {key: value for key, value in self.use.items() if value}


def message_stream(draw, num_tiles: int, n_min: int = 1, n_max: int = 60):
    """A randomized stream of (src, dst, flits, start) with bursty times,
    far-future jumps (overflow reservations) and returns to the past."""
    tiles = st.integers(0, num_tiles - 1)
    n = draw(st.integers(n_min, n_max))
    stream = []
    t = 0.0
    for _ in range(n):
        src, dst = draw(tiles), draw(tiles)
        flits = draw(st.sampled_from((1, 2, 9)))
        kind = draw(st.integers(0, 9))
        if kind == 0:
            # Far-future reservation: several windows ahead (overflow side).
            offset = draw(st.integers(1, 4)) * WINDOW_EPOCHS * EPOCH_CYCLES
            start = t + offset
        elif kind == 1:
            # Revisit the past relative to the max time seen so far.
            start = max(0.0, t - draw(st.integers(0, 3 * EPOCH_CYCLES)))
        else:
            t += draw(st.floats(0.0, 2.5 * EPOCH_CYCLES))
            start = t
        stream.append((src, dst, flits, start))
    return stream


class TestFlitConservation:
    @BOTH_IMPLS
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_total_reserved_equals_flits_times_links_crossed(self, impl, data):
        net = make_net(impl)
        for src, dst, flits, start in message_stream(data.draw, 16):
            path = net.resolve_path(src, dst)
            net.traverse_path(path, start, flits)
        assert net.reserved_flits() == net.link_flit_traversals

    @BOTH_IMPLS
    def test_conservation_includes_far_future_overflow(self, impl):
        net = make_net(impl)
        path = net.resolve_path(0, 3)
        # A reservation far beyond the window must land in overflow...
        far = float(10 * WINDOW_EPOCHS * EPOCH_CYCLES)
        net.traverse_path(path, far, 9)
        # ...then near-time traffic claims the window slots.
        for i in range(8):
            net.traverse_path(path, float(i), 2)
        assert net.reserved_flits() == net.link_flit_traversals
        assert net._overflow, "far-future reservation should sit in overflow"

    @BOTH_IMPLS
    def test_broadcast_reserves_one_slot_per_tree_edge_flit(self, impl):
        net = make_net(impl)
        net.broadcast(5, MsgType.INV_BROADCAST, 0.0)
        assert net.reserved_flits() == net.link_flit_traversals == 15

    @BOTH_IMPLS
    def test_reset_contention_clears_all_reservations(self, impl):
        net = make_net(impl)
        net.traverse_path(net.resolve_path(0, 15), 0.0, 9)
        net.traverse_path(net.resolve_path(0, 15), 1e6, 9)  # overflow side
        net.reset_contention()
        assert net.reserved_flits() == 0
        assert net.occupancy_map() == {}


class TestReferenceEquivalence:
    @BOTH_IMPLS
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_randomized_stream_matches_reference_model(self, impl, data):
        net = make_net(impl)
        ref = ReferenceEpochModel(net)
        for src, dst, flits, start in message_stream(data.draw, 16):
            path = net.resolve_path(src, dst)
            got = net.traverse_path(path, start, flits)
            want = ref.traverse_path(path, start, flits)
            assert got == want, (src, dst, flits, start)
        assert net.occupancy_map() == ref.occupancy_map()

    @BOTH_IMPLS
    def test_window_recycling_preserves_retired_epochs(self, impl):
        """Traffic sweeping far past the window must not lose retired
        occupancy: a later message 'in the past' sees the original load."""
        net = make_net(impl)
        ref = ReferenceEpochModel(net)
        path = net.resolve_path(0, 1)
        # Saturate epoch 0 on the link.
        for _ in range(4):
            assert net.traverse_path(path, 0.0, 9) == ref.traverse_path(path, 0.0, 9)
        # Sweep time far beyond the window so the slot recycles.
        far = float((WINDOW_EPOCHS + 3) * EPOCH_CYCLES)
        assert net.traverse_path(path, far, 2) == ref.traverse_path(path, far, 2)
        # A message back at epoch 0 must still see the saturated epoch.
        got = net.traverse_path(path, 1.0, 9)
        want = ref.traverse_path(path, 1.0, 9)
        assert got == want
        assert got > 1.0 + net.arch.hop_latency + 8  # it was, in fact, delayed
        assert net.occupancy_map() == ref.occupancy_map()

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_accel_matches_fallback_bit_for_bit(self, data):
        """The compiled kernel's contract is bit-identity, not mere
        closeness: identical departure floats and occupancy under the
        same stream."""
        kernel = make_net("accel")
        python = make_net("fallback")
        for src, dst, flits, start in message_stream(data.draw, 16):
            got = kernel.traverse_path(kernel.resolve_path(src, dst), start, flits)
            want = python.traverse_path(python.resolve_path(src, dst), start, flits)
            assert got == want, (src, dst, flits, start)
        assert kernel.occupancy_map() == python.occupancy_map()
        assert kernel.reserved_flits() == python.reserved_flits()

    @BOTH_IMPLS
    def test_unicast_equals_traverse_path_on_resolved_route(self, impl):
        a = make_net(impl)
        b = make_net(impl)
        t = 0.0
        for src in range(16):
            for dst in range(16):
                via_unicast = a.unicast(src, dst, MsgType.LINE_REPLY, t)
                path = b.resolve_path(src, dst)
                via_path = (
                    b.traverse_path(path, t, b.flits_for(MsgType.LINE_REPLY))
                    if src != dst
                    else t
                )
                assert via_unicast == via_path
                t += 3.0
        assert a.occupancy_map() == b.occupancy_map()
