"""Unit tests for ``repro.viz.table.TextTable``."""

from __future__ import annotations

import pytest

from repro.viz import TextTable


class TestConstruction:
    def test_default_alignment_first_left_rest_right(self):
        t = TextTable(["name", "v1", "v2"])
        assert t.aligns == ["<", ">", ">"]

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError, match="at least one column"):
            TextTable([])

    def test_align_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="aligns"):
            TextTable(["a", "b"], aligns=["<"])

    def test_format_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="formats"):
            TextTable(["a"], formats=[None, ".2f"])

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError, match="alignment"):
            TextTable(["a"], aligns=["|"])

    def test_bad_padding_rejected(self):
        with pytest.raises(ValueError, match="padding"):
            TextTable(["a"], padding=0)


class TestRendering:
    def test_column_widths_fit_longest_cell(self):
        t = TextTable(["name", "t"])
        t.add_row(["a-very-long-benchmark-name", 1])
        lines = t.render().splitlines()
        assert len(lines[1]) >= len("a-very-long-benchmark-name")

    def test_float_format_applied(self):
        t = TextTable(["n", "x"], formats=[None, ".3f"])
        t.add_row(["a", 1.23456])
        assert "1.235" in t.render()

    def test_none_renders_as_dash(self):
        t = TextTable(["n", "x"])
        t.add_row(["a", None])
        assert "-" in t.render().splitlines()[-1]

    def test_footer_below_rule(self):
        t = TextTable(["n", "x"])
        t.add_row(["a", 1])
        t.set_footer(["geomean", 1])
        lines = t.render().splitlines()
        assert "geomean" in lines[-1]
        assert set(lines[-2]) <= {"-", " "}

    def test_row_cell_count_mismatch_rejected(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row([1])

    def test_empty_table_render_rejected(self):
        t = TextTable(["a"])
        with pytest.raises(ValueError, match="empty"):
            t.render()

    def test_str_equals_render(self):
        t = TextTable(["a"])
        t.add_row([1])
        assert str(t) == t.render()

    def test_num_rows_counts_data_rows_only(self):
        t = TextTable(["a"])
        t.add_row([1])
        t.add_row([2])
        t.set_footer([3])
        assert t.num_rows == 2

    def test_right_alignment_pads_left(self):
        t = TextTable(["n", "val"], aligns=["<", ">"])
        t.add_row(["a", 7])
        data = t.render().splitlines()[-1]
        assert data.endswith("7")

    def test_header_separator_spans_all_columns(self):
        t = TextTable(["aa", "bb"])
        t.add_row(["x", "y"])
        sep = t.render().splitlines()[1]
        assert sep.split()  # two dashes groups
        assert all(set(part) == {"-"} for part in sep.split())
