"""Unit tests for the ASCII chart primitives."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.viz import (
    bar_chart,
    grouped_bar_chart,
    line_chart,
    sparkline,
    stacked_bar_chart,
)
from repro.viz.ascii import SERIES_GLYPHS


# ----------------------------------------------------------------------
# bar_chart
# ----------------------------------------------------------------------
class TestBarChart:
    def test_largest_value_fills_width(self):
        out = bar_chart(["a", "b"], [4.0, 2.0], width=8)
        lines = out.splitlines()
        assert lines[0].count("#") == 8
        assert lines[1].count("#") == 4

    def test_labels_aligned_to_longest(self):
        out = bar_chart(["x", "longer"], [1.0, 1.0], width=4)
        lines = out.splitlines()
        assert lines[0].index("#") == lines[1].index("#")

    def test_zero_values_render_empty_bars(self):
        out = bar_chart(["a"], [0.0], width=6)
        assert "#" not in out

    def test_explicit_max_value_shares_scale(self):
        half = bar_chart(["a"], [2.0], width=10, max_value=4.0)
        assert half.count("#") == 5

    def test_title_is_first_line(self):
        out = bar_chart(["a"], [1.0], title="Energy")
        assert out.splitlines()[0] == "Energy"

    def test_values_printed_after_bars(self):
        out = bar_chart(["a"], [1.5], width=4)
        assert "1.500" in out

    def test_large_values_use_thousands_separator(self):
        out = bar_chart(["a"], [12345.0], width=4)
        assert "12,345" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            bar_chart(["a", "b"], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            bar_chart([], [])

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            bar_chart(["a"], [-1.0])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            bar_chart(["a"], [float("nan")])

    def test_tiny_width_rejected(self):
        with pytest.raises(ValueError, match="width"):
            bar_chart(["a"], [1.0], width=2)

    def test_nonpositive_max_value_rejected(self):
        with pytest.raises(ValueError, match="max_value"):
            bar_chart(["a"], [1.0], max_value=0.0)

    @given(
        values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=12),
        width=st.integers(min_value=4, max_value=80),
    )
    def test_bars_never_exceed_width(self, values, width):
        labels = [f"b{i}" for i in range(len(values))]
        out = bar_chart(labels, values, width=width)
        for line in out.splitlines():
            assert line.count("#") <= width


# ----------------------------------------------------------------------
# stacked_bar_chart
# ----------------------------------------------------------------------
class TestStackedBarChart:
    def test_segments_use_series_glyphs_in_order(self):
        out = stacked_bar_chart(["x"], {"a": [1.0], "b": [1.0]}, width=8)
        bar_line = out.splitlines()[-1]
        assert SERIES_GLYPHS[0] * 4 in bar_line
        assert SERIES_GLYPHS[1] * 4 in bar_line

    def test_legend_names_all_series(self):
        out = stacked_bar_chart(["x"], {"cache": [1.0], "net": [2.0]})
        legend = out.splitlines()[0]
        assert "cache" in legend and "net" in legend

    def test_total_printed_per_bar(self):
        out = stacked_bar_chart(["x"], {"a": [1.0], "b": [2.0]}, width=6)
        assert "3.000" in out

    def test_stack_never_exceeds_width(self):
        out = stacked_bar_chart(
            ["x", "y"], {"a": [5.0, 1.0], "b": [5.0, 1.0]}, width=10
        )
        for line in out.splitlines()[1:]:
            filled = sum(line.count(g) for g in SERIES_GLYPHS[:2])
            assert filled <= 10

    def test_relative_stack_sizes(self):
        out = stacked_bar_chart(["x"], {"small": [1.0], "big": [3.0]}, width=8)
        bar = out.splitlines()[-1]
        assert bar.count(SERIES_GLYPHS[1]) > bar.count(SERIES_GLYPHS[0])

    def test_all_zero_series_render(self):
        out = stacked_bar_chart(["x"], {"a": [0.0]}, width=8)
        bar_line = out.splitlines()[-1]  # legend line holds the glyph itself
        assert SERIES_GLYPHS[0] not in bar_line

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="series 'a'"):
            stacked_bar_chart(["x", "y"], {"a": [1.0]})

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [1.0] for i in range(len(SERIES_GLYPHS) + 1)}
        with pytest.raises(ValueError, match="at most"):
            stacked_bar_chart(["x"], series)

    def test_empty_labels_rejected(self):
        with pytest.raises(ValueError, match="at least one bar"):
            stacked_bar_chart([], {"a": []})

    def test_no_series_rejected(self):
        with pytest.raises(ValueError, match="at least one series"):
            stacked_bar_chart(["x"], {})

    @given(
        n=st.integers(min_value=1, max_value=6),
        width=st.integers(min_value=8, max_value=64),
        data=st.data(),
    )
    def test_property_stack_fits(self, n, width, data):
        labels = [f"l{i}" for i in range(n)]
        series = {
            name: data.draw(
                st.lists(
                    st.floats(min_value=0, max_value=100), min_size=n, max_size=n
                )
            )
            for name in ("a", "b", "c")
        }
        out = stacked_bar_chart(labels, series, width=width)
        for line in out.splitlines()[1:]:
            filled = sum(line.count(g) for g in SERIES_GLYPHS[:3])
            assert filled <= width


# ----------------------------------------------------------------------
# grouped_bar_chart
# ----------------------------------------------------------------------
class TestGroupedBarChart:
    def test_one_bar_per_series_per_category(self):
        out = grouped_bar_chart(
            ["radix", "lu"], {"1-way": [2.0, 1.0], "2-way": [1.0, 1.0]}
        )
        assert out.count("1-way") == 2
        assert out.count("2-way") == 2
        assert "radix:" in out and "lu:" in out

    def test_shared_scale_across_categories(self):
        out = grouped_bar_chart(
            ["a", "b"], {"s": [4.0, 2.0]}, width=8
        )
        lines = [l for l in out.splitlines() if "#" in l]
        assert lines[0].count("#") == 8
        assert lines[1].count("#") == 4

    def test_category_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="categories"):
            grouped_bar_chart(["a", "b"], {"s": [1.0]})

    def test_empty_categories_rejected(self):
        with pytest.raises(ValueError, match="category"):
            grouped_bar_chart([], {"s": []})


# ----------------------------------------------------------------------
# line_chart
# ----------------------------------------------------------------------
class TestLineChart:
    def test_u_curve_has_minimum_in_middle(self):
        # The Figure-11 shape: high at both ends, low in the middle.
        x = [1, 2, 3, 4, 5]
        y = [1.0, 0.8, 0.7, 0.8, 1.0]
        out = line_chart(x, {"time": y}, width=20, height=8)
        rows = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        top_row = rows[0]
        # Endpoints (maxima) appear on the top row; the middle does not.
        assert top_row[0] != " " and top_row[-1] != " "
        mid = len(top_row) // 2
        assert top_row[mid] == " "

    def test_monotone_series_spans_corners(self):
        out = line_chart([0, 1], {"up": [0.0, 1.0]}, width=10, height=5)
        rows = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        assert rows[-1][0] == SERIES_GLYPHS[0]  # min at left-bottom
        assert rows[0][-1] == SERIES_GLYPHS[0]  # max at right-top

    def test_two_series_use_distinct_glyphs(self):
        out = line_chart(
            [0, 1], {"a": [0.0, 0.0], "b": [1.0, 1.0]}, width=8, height=4
        )
        assert SERIES_GLYPHS[0] in out and SERIES_GLYPHS[1] in out

    def test_y_axis_labels_min_max(self):
        out = line_chart([0, 1], {"a": [2.0, 6.0]}, width=8, height=4)
        assert "6.000" in out and "2.000" in out

    def test_x_axis_labels_first_last(self):
        out = line_chart([1, 20], {"a": [0.0, 1.0]}, width=8, height=4)
        last = out.splitlines()[-1]
        assert "1" in last and "20" in last

    def test_constant_series_renders(self):
        out = line_chart([0, 1, 2], {"flat": [1.0, 1.0, 1.0]}, width=9, height=4)
        assert SERIES_GLYPHS[0] in out

    def test_single_point_rejected(self):
        with pytest.raises(ValueError, match="two x points"):
            line_chart([1], {"a": [1.0]})

    def test_unsorted_x_rejected(self):
        with pytest.raises(ValueError, match="nondecreasing"):
            line_chart([2, 1], {"a": [1.0, 2.0]})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            line_chart([1, 2], {"a": [1.0]})

    def test_small_height_rejected(self):
        with pytest.raises(ValueError, match="height"):
            line_chart([1, 2], {"a": [1.0, 2.0]}, height=2)

    @given(
        ys=st.lists(
            st.floats(min_value=0, max_value=100), min_size=2, max_size=20
        )
    )
    def test_property_grid_dimensions(self, ys):
        xs = list(range(len(ys)))
        out = line_chart(xs, {"s": ys}, width=30, height=10)
        rows = [l for l in out.splitlines() if "|" in l]
        assert len(rows) == 10
        assert all(len(r.split("|", 1)[1]) == 30 for r in rows)


# ----------------------------------------------------------------------
# sparkline
# ----------------------------------------------------------------------
class TestSparkline:
    def test_monotone_ramp(self):
        out = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert out == " .:-=+*#"

    def test_length_matches_input(self):
        assert len(sparkline([1.0] * 7)) == 7

    def test_constant_input_uses_lowest_level(self):
        assert sparkline([5.0, 5.0]) == "  "

    def test_min_and_max_hit_extremes(self):
        out = sparkline([0.0, 10.0])
        assert out[0] == " " and out[1] == "#"

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            sparkline([])

    @given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=50))
    def test_property_output_charset(self, values):
        out = sparkline(values)
        assert set(out) <= set(" .:-=+*#")
