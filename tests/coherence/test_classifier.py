"""Locality classifier tests: Complete, Limited_k, Timestamp/RAT, one-way."""

import pytest

from repro.coherence.classifier.complete import CompleteClassifier
from repro.coherence.classifier.limited import LimitedClassifier, make_classifier
from repro.common.params import ProtocolConfig
from repro.common.types import RemovalReason, SharerMode
from repro.mem.l2 import L2Line


def make_line():
    return L2Line()


def proto(**kwargs):
    base = dict(pct=4, rat_max=16, n_rat_levels=2, remote_policy="rat")
    base.update(kwargs)
    return ProtocolConfig(**base)


class TestFactory:
    def test_limited_default(self):
        assert isinstance(make_classifier(proto()), LimitedClassifier)

    def test_complete(self):
        assert isinstance(make_classifier(proto(classifier="complete")), CompleteClassifier)


class TestCompleteClassifier:
    def test_initial_mode_private(self):
        cls = CompleteClassifier(proto())
        mode, entry = cls.resolve_mode(make_line(), core=7)
        assert mode is SharerMode.PRIVATE
        assert entry is not None and entry.core == 7

    def test_demotion_below_pct(self):
        cls = CompleteClassifier(proto())
        line = make_line()
        cls.resolve_mode(line, 0)
        new_mode = cls.on_removal(line, 0, private_util=3, reason=RemovalReason.EVICTION)
        assert new_mode is SharerMode.REMOTE
        assert cls.demotions == 1

    def test_stays_private_at_pct(self):
        cls = CompleteClassifier(proto())
        line = make_line()
        cls.resolve_mode(line, 0)
        assert cls.on_removal(line, 0, 4, RemovalReason.EVICTION) is SharerMode.PRIVATE

    def test_remote_plus_private_utilization_counted(self):
        """Section 3.2: classification adds remote to private utilization."""
        cls = CompleteClassifier(proto())
        line = make_line()
        _, entry = cls.resolve_mode(line, 0)
        entry.mode = SharerMode.REMOTE
        cls.on_remote_access(line, entry, None, False)  # remote_util = 1... promoted
        # With an invalid way the short-cut does not apply below PCT.
        assert entry.remote_util == 1
        entry.mode = SharerMode.PRIVATE  # pretend promoted via another path
        assert cls.on_removal(line, 0, 3, RemovalReason.EVICTION) is SharerMode.PRIVATE

    def test_promotion_at_rat_threshold(self):
        cls = CompleteClassifier(proto())
        line = make_line()
        _, entry = cls.resolve_mode(line, 0)
        entry.mode = SharerMode.REMOTE
        promoted = [cls.on_remote_access(line, entry, 10.0, False) for _ in range(4)]
        # RAT level 0 threshold == PCT == 4: promoted on the 4th access.
        assert promoted == [False, False, False, True]
        assert entry.mode is SharerMode.PRIVATE
        assert cls.promotions == 1

    def test_rat_escalation_on_eviction_demotion(self):
        cls = CompleteClassifier(proto())
        line = make_line()
        _, entry = cls.resolve_mode(line, 0)
        cls.on_removal(line, 0, 1, RemovalReason.EVICTION)
        assert entry.rat_level == 1  # threshold now RATmax=16
        entry2 = cls.locality_entry(line, 0, allocate=True)
        promoted = sum(
            cls.on_remote_access(line, entry2, 10.0, False) for _ in range(15)
        )
        assert promoted == 0  # needs 16 accesses now
        assert cls.on_remote_access(line, entry2, 10.0, False)

    def test_rat_unchanged_on_invalidation_demotion(self):
        cls = CompleteClassifier(proto())
        line = make_line()
        _, entry = cls.resolve_mode(line, 0)
        cls.on_removal(line, 0, 1, RemovalReason.INVALIDATION)
        assert entry.rat_level == 0

    def test_rat_reset_on_private_classification(self):
        cls = CompleteClassifier(proto())
        line = make_line()
        _, entry = cls.resolve_mode(line, 0)
        cls.on_removal(line, 0, 1, RemovalReason.EVICTION)
        assert entry.rat_level == 1
        cls.on_removal(line, 0, 8, RemovalReason.EVICTION)
        assert entry.rat_level == 0  # re-learn opportunity

    def test_invalid_way_shortcut(self):
        cls = CompleteClassifier(proto())
        line = make_line()
        _, entry = cls.resolve_mode(line, 0)
        cls.on_removal(line, 0, 1, RemovalReason.EVICTION)  # threshold 16 now
        entry = cls.locality_entry(line, 0, allocate=True)
        for _ in range(3):
            cls.on_remote_access(line, entry, None, True)
        # 4th access with an invalid way in the set: promote at PCT.
        assert cls.on_remote_access(line, entry, None, True)

    def test_write_resets_other_remote_sharers(self):
        cls = CompleteClassifier(proto())
        line = make_line()
        for core in (0, 1, 2):
            _, e = cls.resolve_mode(line, core)
            e.mode = SharerMode.REMOTE
            e.remote_util = 3
        cls.on_write(line, writer=1)
        entries = {e.core: e for e in cls.tracked_entries(line)}
        assert entries[0].remote_util == 0 and not entries[0].active
        assert entries[2].remote_util == 0
        assert entries[1].remote_util == 3  # the writer keeps its counter

    def test_timestamp_check_pass_and_fail(self):
        cls = CompleteClassifier(proto(remote_policy="timestamp"))
        line = make_line()
        line.last_access = 100.0
        _, entry = cls.resolve_mode(line, 0)
        entry.mode = SharerMode.REMOTE
        # Check passes: line hotter than the requester's coldest line.
        cls.on_remote_access(line, entry, l1_min_last_access=50.0, l1_has_invalid_way=False)
        assert entry.remote_util == 1
        cls.on_remote_access(line, entry, 50.0, False)
        assert entry.remote_util == 2
        # Check fails: counter resets to 1.
        cls.on_remote_access(line, entry, 200.0, False)
        assert entry.remote_util == 1

    def test_storage_bits_complete(self):
        assert CompleteClassifier(proto()).storage_bits_per_entry(64) == 384


class TestOneWay:
    def test_never_promotes(self):
        cls = CompleteClassifier(proto(one_way=True))
        line = make_line()
        _, entry = cls.resolve_mode(line, 0)
        cls.on_removal(line, 0, 1, RemovalReason.EVICTION)
        entry = cls.locality_entry(line, 0, allocate=True)
        for _ in range(100):
            assert not cls.on_remote_access(line, entry, None, True)
        assert entry.mode is SharerMode.REMOTE

    def test_demotion_still_happens(self):
        cls = CompleteClassifier(proto(one_way=True))
        line = make_line()
        cls.resolve_mode(line, 0)
        assert cls.on_removal(line, 0, 1, RemovalReason.EVICTION) is SharerMode.REMOTE


class TestLimitedClassifier:
    def test_tracks_up_to_k(self):
        cls = LimitedClassifier(proto(classifier="limited", limited_k=3))
        line = make_line()
        for core in range(3):
            mode, entry = cls.resolve_mode(line, core)
            assert entry is not None
        assert len(cls.tracked_entries(line)) == 3

    def test_vote_when_full_and_active(self):
        cls = LimitedClassifier(proto(classifier="limited", limited_k=3))
        line = make_line()
        for core in range(3):
            cls.resolve_mode(line, core)  # all private, active
        mode, entry = cls.resolve_mode(line, 10)
        assert entry is None  # untracked
        assert mode is SharerMode.PRIVATE  # majority of tracked modes
        assert cls.vote_decisions == 1

    def test_replacement_of_inactive_entry(self):
        cls = LimitedClassifier(proto(classifier="limited", limited_k=3))
        line = make_line()
        for core in range(3):
            cls.resolve_mode(line, core)
        # Demote core 0: its entry becomes inactive (and remote).
        cls.on_removal(line, 0, 1, RemovalReason.INVALIDATION)
        mode, entry = cls.resolve_mode(line, 10)
        assert entry is not None and entry.core == 10
        assert cls.replacements == 1
        tracked = {e.core for e in cls.tracked_entries(line)}
        assert tracked == {1, 2, 10}

    def test_newcomer_starts_in_majority_mode(self):
        cls = LimitedClassifier(proto(classifier="limited", limited_k=3))
        line = make_line()
        for core in range(3):
            cls.resolve_mode(line, core)
        for core in range(3):
            cls.on_removal(line, core, 1, RemovalReason.INVALIDATION)  # all remote now
        mode, entry = cls.resolve_mode(line, 10)
        assert entry is not None
        assert entry.mode is SharerMode.REMOTE  # inherited by majority vote

    def test_vote_tie_favours_private(self):
        cls = LimitedClassifier(proto(classifier="limited", limited_k=2))
        line = make_line()
        cls.resolve_mode(line, 0)
        cls.resolve_mode(line, 1)
        cls.on_removal(line, 0, 1, RemovalReason.INVALIDATION)  # 1 remote, 1 private
        # Both remaining entries active? core1 private-active, core0 remote-inactive.
        # Tie in modes -> private (the protocol's initial mode).
        assert cls.majority_vote(line) is SharerMode.PRIVATE

    def test_untracked_remote_vote_cannot_promote(self):
        cls = LimitedClassifier(proto(classifier="limited", limited_k=1))
        line = make_line()
        cls.resolve_mode(line, 0)
        _, entry = cls.resolve_mode(line, 0)
        entry.mode = SharerMode.REMOTE  # stays active
        mode, tracked = cls.resolve_mode(line, 5)
        assert tracked is None and mode is SharerMode.REMOTE
        assert not cls.on_remote_access(line, None, None, True)

    def test_storage_bits_limited3(self):
        cls = LimitedClassifier(proto(classifier="limited", limited_k=3))
        assert cls.storage_bits_per_entry(64) == 36
