"""ACKwise / full-map sharer tracking tests."""

import pytest

from repro.coherence.directory import (
    AckwisePolicy,
    DirectoryEntry,
    FullMapPolicy,
    make_sharer_policy,
)
from repro.common.errors import CoherenceError
from repro.common.params import ProtocolConfig
from repro.common.types import DirState


class TestDirectoryEntry:
    def test_initial_state(self):
        entry = DirectoryEntry()
        assert entry.state is DirState.UNCACHED
        assert entry.owner == -1

    def test_state_transitions(self):
        entry = DirectoryEntry()
        entry.sharers.add(1)
        assert entry.state is DirState.SHARED
        entry.owner = 1
        assert entry.state is DirState.EXCLUSIVE

    def test_swmr_invariant_check(self):
        entry = DirectoryEntry()
        entry.owner = 1
        entry.sharers.update({1, 2})
        with pytest.raises(CoherenceError):
            entry.check_invariants()
        entry.sharers.discard(2)
        entry.check_invariants()  # now legal


class TestAckwise:
    @pytest.fixture
    def policy(self):
        return AckwisePolicy(num_cores=64, pointers=4)

    def test_no_overflow_below_pointer_count(self, policy):
        entry = DirectoryEntry()
        for core in range(4):
            policy.add_sharer(entry, core)
        assert not entry.overflowed
        assert not policy.use_broadcast(entry)

    def test_overflow_beyond_pointers(self, policy):
        entry = DirectoryEntry()
        for core in range(5):
            policy.add_sharer(entry, core)
        assert entry.overflowed
        assert policy.use_broadcast(entry)

    def test_overflow_persists_until_drained(self, policy):
        entry = DirectoryEntry()
        for core in range(5):
            policy.add_sharer(entry, core)
        for core in range(4):
            policy.remove_sharer(entry, core)
        # One sharer left but identities were lost: still broadcast.
        assert entry.overflowed
        policy.remove_sharer(entry, 4)
        assert not entry.overflowed  # fresh start once empty

    def test_remove_clears_owner(self, policy):
        entry = DirectoryEntry()
        policy.set_owner(entry, 7)
        assert entry.state is DirState.EXCLUSIVE
        policy.remove_sharer(entry, 7)
        assert entry.owner == -1
        assert entry.state is DirState.UNCACHED

    def test_storage_bits(self, policy):
        # Section 3.6: ACKwise_4 uses 24 bits per entry at 64 cores.
        assert policy.storage_bits_per_entry() == 24


class TestFullMap:
    def test_never_broadcasts(self):
        policy = FullMapPolicy(num_cores=64)
        entry = DirectoryEntry()
        for core in range(64):
            policy.add_sharer(entry, core)
        assert not policy.use_broadcast(entry)

    def test_storage_bits(self):
        # Section 3.6: full map uses 64 bits per entry at 64 cores.
        assert FullMapPolicy(num_cores=64).storage_bits_per_entry() == 64


def test_factory():
    assert isinstance(make_sharer_policy(ProtocolConfig(), 64, 4), AckwisePolicy)
    assert isinstance(
        make_sharer_policy(ProtocolConfig(directory="fullmap"), 64, 4), FullMapPolicy
    )
