"""Tests for the Complete classifier's vote-init short-cut (Section 5.3)."""

from __future__ import annotations

from repro.coherence.classifier.complete import CompleteClassifier
from repro.common.params import ProtocolConfig
from repro.common.types import SharerMode
from repro.mem.l2 import L2Line


def classifier(vote_init: bool) -> CompleteClassifier:
    return CompleteClassifier(
        ProtocolConfig(classifier="complete", complete_vote_init=vote_init)
    )


def line_with_modes(cls: CompleteClassifier, modes: dict[int, SharerMode]) -> L2Line:
    l2line = L2Line()
    for core, mode in modes.items():
        entry = cls.locality_entry(l2line, core, allocate=True)
        entry.mode = mode
    return l2line


class TestVoteInit:
    def test_plain_complete_starts_new_cores_private(self):
        cls = classifier(vote_init=False)
        l2line = line_with_modes(cls, {0: SharerMode.REMOTE, 1: SharerMode.REMOTE})
        entry = cls.locality_entry(l2line, 5, allocate=True)
        assert entry.mode is SharerMode.PRIVATE  # Figure 4's Initial state

    def test_shortcut_inherits_remote_majority(self):
        cls = classifier(vote_init=True)
        l2line = line_with_modes(
            cls, {0: SharerMode.REMOTE, 1: SharerMode.REMOTE, 2: SharerMode.PRIVATE}
        )
        entry = cls.locality_entry(l2line, 5, allocate=True)
        assert entry.mode is SharerMode.REMOTE

    def test_shortcut_inherits_private_majority(self):
        cls = classifier(vote_init=True)
        l2line = line_with_modes(cls, {0: SharerMode.PRIVATE, 1: SharerMode.PRIVATE})
        entry = cls.locality_entry(l2line, 5, allocate=True)
        assert entry.mode is SharerMode.PRIVATE

    def test_tie_favours_private(self):
        cls = classifier(vote_init=True)
        l2line = line_with_modes(cls, {0: SharerMode.REMOTE, 1: SharerMode.PRIVATE})
        entry = cls.locality_entry(l2line, 5, allocate=True)
        assert entry.mode is SharerMode.PRIVATE

    def test_first_core_always_starts_private(self):
        # No tracked cores yet: nothing to vote over.
        cls = classifier(vote_init=True)
        entry = cls.locality_entry(L2Line(), 0, allocate=True)
        assert entry.mode is SharerMode.PRIVATE

    def test_shortcut_counts_vote_decisions(self):
        cls = classifier(vote_init=True)
        l2line = line_with_modes(cls, {0: SharerMode.REMOTE, 1: SharerMode.REMOTE})
        before = cls.vote_decisions
        cls.locality_entry(l2line, 5, allocate=True)
        assert cls.vote_decisions == before + 1

    def test_existing_entries_not_revoted(self):
        cls = classifier(vote_init=True)
        l2line = line_with_modes(cls, {0: SharerMode.PRIVATE})
        entry = cls.locality_entry(l2line, 0, allocate=True)
        entry.mode = SharerMode.REMOTE
        again = cls.locality_entry(l2line, 0, allocate=True)
        assert again is entry
        assert again.mode is SharerMode.REMOTE
