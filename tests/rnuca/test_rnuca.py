"""R-NUCA page classification and placement tests."""

import pytest

from repro.common import addr as addrmod
from repro.common.errors import SimulationError
from repro.common.params import ArchConfig
from repro.rnuca.page_table import PageKind, RNucaPageTable
from repro.rnuca.placement import RNucaPlacement


class TestPageTable:
    def test_first_touch_private(self):
        table = RNucaPageTable()
        kind, owner, previous = table.classify_data(10, core=3)
        assert kind is PageKind.PRIVATE
        assert owner == 3
        assert previous is None
        assert table.private_pages == 1

    def test_same_core_stays_private(self):
        table = RNucaPageTable()
        table.classify_data(10, core=3)
        kind, owner, previous = table.classify_data(10, core=3)
        assert kind is PageKind.PRIVATE and owner == 3 and previous is None

    def test_second_core_transitions_to_shared(self):
        table = RNucaPageTable()
        table.classify_data(10, core=3)
        kind, owner, previous = table.classify_data(10, core=5)
        assert kind is PageKind.SHARED
        assert previous == 3  # caller must flush core 3's slice
        assert table.transitions == 1
        # One-way: never goes back to private.
        kind, _, previous = table.classify_data(10, core=3)
        assert kind is PageKind.SHARED and previous is None

    def test_instruction_pages(self):
        table = RNucaPageTable()
        assert table.classify_instruction(7) is PageKind.INSTRUCTION
        assert table.kind_of(7) is PageKind.INSTRUCTION
        with pytest.raises(SimulationError):
            table.classify_data(7, core=0)

    def test_data_page_cannot_become_instruction(self):
        table = RNucaPageTable()
        table.classify_data(7, core=0)
        with pytest.raises(SimulationError):
            table.classify_instruction(7)

    def test_owner_of(self):
        table = RNucaPageTable()
        table.classify_data(4, core=9)
        assert table.owner_of(4) == 9
        table.classify_data(4, core=2)
        assert table.owner_of(4) is None


class TestPlacement:
    @pytest.fixture
    def placement(self):
        return RNucaPlacement(ArchConfig(num_cores=16, num_memory_controllers=4))

    def test_private_data_at_owner_slice(self, placement):
        line = (1 << 20) // 64
        home, flush = placement.data_home(line, core=6)
        assert home == 6
        assert flush is None

    def test_shared_data_hash_homed(self, placement):
        line = (1 << 20) // 64
        placement.data_home(line, core=6)
        home, flush = placement.data_home(line, core=2)
        assert flush == 6  # the old private owner's slice must be flushed
        assert home == placement.shared_home(line)
        # Stable afterwards.
        assert placement.data_home(line, core=6) == (home, None)

    def test_shared_home_deterministic_and_spread(self, placement):
        lines = range(1000, 1512)
        homes = [placement.shared_home(line) for line in lines]
        assert homes == [placement.shared_home(line) for line in lines]
        # The hash should use most of the 16 slices for 512 lines.
        assert len(set(homes)) >= 12

    def test_cluster_tiles_are_2x2_blocks(self, placement):
        # 4x4 mesh, cluster size 4 -> 2x2 blocks.
        assert placement.cluster_tiles(0) == (0, 1, 4, 5)
        assert placement.cluster_tiles(5) == (0, 1, 4, 5)
        assert placement.cluster_tiles(15) == (10, 11, 14, 15)

    def test_instruction_rotational_interleaving(self, placement):
        page = 999
        base_line = page * (4096 // 64)
        homes = [placement.instruction_home(base_line + i, core=0) for i in range(8)]
        # Rotates over the 4 cluster tiles.
        assert homes[:4] == homes[4:]
        assert set(homes) == set(placement.cluster_tiles(0))

    def test_all_lines_of_private_page_share_home(self, placement):
        page_base = 1 << 22
        lines = [addrmod.line_of(page_base + i * 64) for i in range(64)]
        homes = {placement.data_home(line, core=3)[0] for line in lines}
        assert homes == {3}
