"""Simulator tests: scheduling, barriers, locks, warmup, stats plumbing."""

import pytest

from repro.common.errors import SimulationError, TraceError
from repro.common.params import ArchConfig, CacheGeometry, ProtocolConfig, baseline_protocol
from repro.sim.multicore import Simulator
from repro.workloads.base import Trace, TraceBuilder

BASE = 1 << 30
LINE = 64


def arch16():
    return ArchConfig(
        num_cores=16,
        num_memory_controllers=4,
        l1d=CacheGeometry(1, 2, 1),
        l2=CacheGeometry(4, 4, 7),
    )


def build_trace(body, name="test", cores=16):
    tb = TraceBuilder(name, cores)
    body(tb)
    return tb.build()


class TestBasicExecution:
    def test_empty_trace(self):
        trace = build_trace(lambda tb: None)
        stats = Simulator(arch16(), baseline_protocol()).run(trace)
        assert stats.completion_time == 0.0

    def test_compute_only(self):
        def body(tb):
            for tid in range(16):
                tb.thread(tid).work(100)
        stats = Simulator(arch16(), baseline_protocol()).run(build_trace(body))
        assert stats.completion_time == pytest.approx(100.0)
        assert stats.instructions == 16 * 100

    def test_memory_access_adds_latency(self):
        def body(tb):
            tb.thread(0).read(BASE)
        stats = Simulator(arch16(), baseline_protocol()).run(build_trace(body))
        assert stats.completion_time > 1.0  # miss to DRAM
        assert stats.miss.misses == 1
        assert stats.dram_requests == 1

    def test_wrong_core_count_rejected(self):
        trace = build_trace(lambda tb: None, cores=4)
        with pytest.raises(SimulationError):
            Simulator(arch16(), baseline_protocol()).run(trace)

    def test_determinism(self):
        def body(tb):
            for tid in range(16):
                tp = tb.thread(tid)
                for i in range(20):
                    tp.work(3)
                    tp.read(BASE + ((tid * 7 + i) % 40) * LINE)
            tb.barrier_all()
        sim = Simulator(arch16(), ProtocolConfig(pct=4))
        a = sim.run(build_trace(body))
        b = sim.run(build_trace(body))
        assert a.completion_time == b.completion_time
        assert a.energy.total == b.energy.total


class TestBarriers:
    def test_barrier_aligns_cores(self):
        def body(tb):
            for tid in range(16):
                tb.thread(tid).work(10 * tid)  # staggered arrivals
            tb.barrier_all()
            for tid in range(16):
                tb.thread(tid).work(5)
        arch = arch16()
        stats = Simulator(arch, baseline_protocol()).run(build_trace(body))
        # Everyone resumes at max(arrival) + barrier latency, then +5.
        assert stats.completion_time == pytest.approx(150 + arch.barrier_latency + 5)

    def test_sync_time_charged_to_waiters(self):
        def body(tb):
            tb.thread(0).work(1000)
            tb.barrier_all()
        stats = Simulator(arch16(), baseline_protocol()).run(build_trace(body))
        assert stats.latency.sync > 0

    def test_mismatched_barriers_rejected_at_build(self):
        tb = TraceBuilder("bad", 2)
        tb.thread(0)._barrier(0)  # only thread 0 hits the barrier
        with pytest.raises(TraceError):
            tb.build()


class TestLocks:
    def test_lock_serializes_critical_sections(self):
        def body(tb):
            for tid in range(16):
                tp = tb.thread(tid)
                tp.lock(1)
                tp.work(50)
                tp.unlock(1)
        arch = arch16()
        stats = Simulator(arch, baseline_protocol()).run(build_trace(body))
        # 16 critical sections of 50 cycles must serialize.
        assert stats.completion_time >= 16 * 50

    def test_unlock_without_lock_rejected_at_build(self):
        tb = TraceBuilder("bad", 2)
        tb.thread(0).unlock(3)
        with pytest.raises(TraceError):
            tb.build()

    def test_fifo_grant_order(self):
        # Thread 0 holds the lock long; 1 and 2 queue behind in arrival order.
        def body(tb):
            t0, t1, t2 = tb.thread(0), tb.thread(1), tb.thread(2)
            t0.lock(0)
            t0.work(500)
            t0.unlock(0)
            t1.work(10)
            t1.lock(0)
            t1.unlock(0)
            t2.work(20)
            t2.lock(0)
            t2.unlock(0)
        trace = build_trace(body, cores=4)
        stats = Simulator(ArchConfig(num_cores=4, num_memory_controllers=2),
                          baseline_protocol()).run(trace)
        assert stats.completion_time > 500


class TestWarmup:
    def _trace(self):
        def body(tb):
            for tid in range(16):
                tp = tb.thread(tid)
                for i in range(30):
                    tp.work(2)
                    tp.read(BASE + ((tid + i) % 64) * LINE)
            tb.barrier_all()
        return build_trace(body)

    def test_warmup_lowers_measured_miss_rate(self):
        cold = Simulator(arch16(), baseline_protocol(), warmup=False).run(self._trace())
        warm = Simulator(arch16(), baseline_protocol(), warmup=True).run(self._trace())
        assert warm.miss.miss_rate <= cold.miss.miss_rate
        assert warm.completion_time <= cold.completion_time

    def test_warmup_measures_one_pass(self):
        warm = Simulator(arch16(), baseline_protocol(), warmup=True).run(self._trace())
        cold = Simulator(arch16(), baseline_protocol(), warmup=False).run(self._trace())
        # Both report a single pass's accesses.
        assert warm.miss.accesses == cold.miss.accesses


class TestStatsPlumbing:
    def test_breakdown_components_populated(self):
        def body(tb):
            for tid in range(16):
                tp = tb.thread(tid)
                tp.work(10)
                tp.write(BASE)  # everyone fights over one line
            tb.barrier_all()
        stats = Simulator(arch16(), baseline_protocol()).run(build_trace(body))
        assert stats.latency.compute > 0
        assert stats.latency.l1_to_l2 > 0
        assert stats.latency.l2_waiting > 0  # serialized on the same line
        assert stats.latency.l2_sharers > 0  # invalidations
        assert stats.energy.total > 0
        assert stats.network_flits > 0

    def test_energy_breakdown_components(self):
        def body(tb):
            for tid in range(16):
                tb.thread(tid).read(BASE + tid * 8 * LINE)
        stats = Simulator(arch16(), baseline_protocol()).run(build_trace(body))
        e = stats.energy
        assert e.l1i > 0  # instruction energy
        assert e.l1d > 0
        assert e.l2 > 0
        assert e.link > 0 and e.router > 0
        assert e.total == pytest.approx(
            e.l1i + e.l1d + e.l2 + e.directory + e.router + e.link
        )
