"""CLI surface of the telemetry layer: ``--telemetry``, ``events``,
``serve-stats``, and the stderr logging overhaul (``-q``/``-v``)."""

from __future__ import annotations

import json
import os
import socket

from repro.obs import TELEMETRY, TELEMETRY_ENV
from repro.runner.cli import main as cli_main

SWEEP = ["sweep", "--workloads", "tsp", "--pct", "1", "--cores", "16",
         "--scale", "tiny", "--no-cache", "--quiet"]


class TestSweepTelemetry:
    def test_stdout_byte_stable_with_telemetry(self, tmp_path, capsys):
        assert cli_main(SWEEP) == 0
        plain = capsys.readouterr().out
        sink = tmp_path / "events.jsonl"
        assert cli_main(SWEEP + ["--telemetry", str(sink)]) == 0
        observed = capsys.readouterr().out
        assert observed == plain  # the deliverable is untouched
        assert sink.exists() and sink.stat().st_size > 0

    def test_sink_scope_is_the_sweep(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        assert cli_main(SWEEP + ["--telemetry", str(sink)]) == 0
        # The in-process singleton and the env export are both restored.
        assert not TELEMETRY.enabled
        assert TELEMETRY_ENV not in os.environ

    def test_bad_sink_fails_before_sweeping(self, tmp_path, capsys):
        assert cli_main(SWEEP + ["--telemetry", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "telemetry sink" in captured.err
        assert captured.out == ""  # failed loudly before any simulation

    def test_events_renders_the_sink(self, tmp_path, capsys):
        sink = tmp_path / "events.jsonl"
        assert cli_main(SWEEP + ["--telemetry", str(sink)]) == 0
        capsys.readouterr()
        assert cli_main(["events", str(sink)]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "sim.run" in out
        assert "sim.l1d.accesses" in out


class TestEventsVerb:
    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert cli_main(["events", str(tmp_path / "absent.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_limit_caps_counter_rows(self, tmp_path, capsys):
        sink = tmp_path / "events.jsonl"
        records = [
            {"v": 1, "kind": "counter", "name": f"c{i:02d}", "pid": 1, "value": i}
            for i in range(30)
        ]
        sink.write_text("".join(json.dumps(r) + "\n" for r in records))
        assert cli_main(["events", str(sink), "--limit", "5"]) == 0
        assert "5 of 30" in capsys.readouterr().out


class TestServeStatsVerb:
    def test_unreachable_host_exits_nonzero(self, capsys):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        code = cli_main(
            ["serve-stats", f"127.0.0.1:{free_port}", "--timeout", "2"]
        )
        assert code == 1
        assert "unreachable" in capsys.readouterr().err


class TestLoggingFlags:
    def test_quiet_suppresses_diagnostics(self, capsys):
        assert cli_main(["-q"] + SWEEP) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "tsp" in captured.out  # the table still lands on stdout

    def test_default_diagnostics_unchanged(self, capsys):
        assert cli_main(SWEEP) == 0
        err = capsys.readouterr().err
        assert "sweep: " in err
        assert "1 simulated" in err
        assert "error:" not in err

    def test_errors_carry_prefix_even_when_quiet(self, capsys):
        assert cli_main(["-q", "sweep", "--workloads", "nope", "--no-cache"]) == 1
        assert "error: unknown workloads" in capsys.readouterr().err

    def test_repeated_invocations_do_not_duplicate_handlers(self, capsys):
        for _ in range(3):
            assert cli_main(SWEEP) == 0
        err = capsys.readouterr().err
        assert err.count("1 simulated") == 3
