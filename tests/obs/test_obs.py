"""Unit suite for the telemetry core and renderer (``repro.obs``).

Covers the contracts DESIGN.md section 10 pins: span nesting and
exception-path closure, counter increments of arbitrary magnitude,
disabled-path no-ops, loud failure on a bad sink at enable time versus
silent self-disable on a sink that dies mid-run, and a renderer that
survives torn writes and foreign schema versions.
"""

from __future__ import annotations

import json
import logging
import os

import pytest

from repro.common.errors import ConfigError, ReproError
from repro.obs import (
    EVENT_SCHEMA,
    TELEMETRY_ENV,
    Telemetry,
    enable_from_env,
    load_events,
    render_events,
    render_file,
)


def _records(path):
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


@pytest.fixture
def tel(tmp_path):
    telemetry = Telemetry()
    telemetry.enable(tmp_path / "events.jsonl")
    yield telemetry
    telemetry.disable()


class TestLifecycle:
    def test_enable_emits_meta_record(self, tel):
        (record,) = _records(tel.path)
        assert record["kind"] == "meta"
        assert record["name"] == "telemetry.enabled"
        assert record["v"] == EVENT_SCHEMA
        assert record["pid"] == os.getpid()

    def test_enable_invalid_sink_raises_config_error(self, tmp_path):
        telemetry = Telemetry()
        with pytest.raises(ConfigError):
            telemetry.enable(tmp_path)  # a directory cannot be a sink
        assert not telemetry.enabled

    def test_enable_parent_is_file_raises(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        telemetry = Telemetry()
        with pytest.raises(ConfigError):
            telemetry.enable(blocker / "events.jsonl")

    def test_disable_is_idempotent(self, tel):
        tel.disable()
        tel.disable()
        assert not tel.enabled

    def test_sink_failure_disables_without_raising(self, tel, caplog, monkeypatch):
        # The CLI may have installed a non-propagating "repro" logger in
        # this process; caplog captures at the root, so re-open the path.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        os.close(tel._fd)  # simulate the sink dying mid-run
        tel._fd = -1
        with caplog.at_level("WARNING", logger="repro.obs"):
            tel.count("after.failure", 1)
        assert not tel.enabled
        assert any("telemetry sink failed" in r.message for r in caplog.records)
        tel.count("still.fine", 1)  # emitting after self-disable is a no-op

    def test_enable_from_env(self, tmp_path):
        telemetry = Telemetry()
        sink = tmp_path / "env.jsonl"
        assert enable_from_env(telemetry, {TELEMETRY_ENV: str(sink)})
        assert telemetry.enabled and telemetry.path == sink
        telemetry.disable()

    def test_enable_from_env_absent_or_bad(self, tmp_path, caplog, monkeypatch):
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        telemetry = Telemetry()
        assert not enable_from_env(telemetry, {})
        with caplog.at_level("WARNING", logger="repro.obs"):
            assert not enable_from_env(telemetry, {TELEMETRY_ENV: str(tmp_path)})
        assert not telemetry.enabled


class TestDisabledPath:
    def test_everything_is_a_noop(self, tmp_path):
        telemetry = Telemetry()
        assert telemetry.begin("x") == 0
        telemetry.end(0)
        telemetry.count("c", 7)
        telemetry.event("e", k="v")
        with telemetry.span("s") as sid:
            assert sid == 0

    def test_disabled_span_context_is_shared(self):
        telemetry = Telemetry()
        assert telemetry.span("a") is telemetry.span("b")


class TestSpans:
    def test_nesting_parent_and_depth(self, tel):
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        spans = [r for r in _records(tel.path) if r["kind"] == "span"]
        inner, outer = spans  # inner closes (and is emitted) first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent"] == outer["id"]
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert outer["parent"] == 0
        assert inner["dur"] >= 0 and inner["start"] >= 0

    def test_exception_closes_span_with_error_attr(self, tel):
        with pytest.raises(RuntimeError):
            with tel.span("doomed"):
                raise RuntimeError("boom")
        (span,) = [r for r in _records(tel.path) if r["kind"] == "span"]
        assert span["attrs"]["error"] == "RuntimeError"

    def test_end_of_outer_closes_abandoned_inner(self, tel):
        outer = tel.begin("outer")
        tel.begin("leaked")  # never explicitly ended
        tel.end(outer)
        spans = [r["name"] for r in _records(tel.path) if r["kind"] == "span"]
        assert spans == ["leaked", "outer"]

    def test_end_unknown_id_is_noop(self, tel):
        tel.end(424242)
        assert [r for r in _records(tel.path) if r["kind"] == "span"] == []

    def test_span_attrs_survive(self, tel):
        with tel.span("job", workload="tsp", pct=4):
            pass
        (span,) = [r for r in _records(tel.path) if r["kind"] == "span"]
        assert span["attrs"] == {"workload": "tsp", "pct": 4}


class TestCounters:
    def test_large_values_are_exact(self, tel):
        # Counters are increments summed at read time: there is no fixed
        # accumulator width to overflow, and a 2**63-scale value must
        # round-trip bit-exactly through JSON.
        big = 2**63 - 1
        tel.count("huge", big)
        tel.count("huge", 1)
        totals = {
            r["name"]: r["value"] for r in _records(tel.path) if r["kind"] == "counter"
        }
        assert totals["huge"] == 1  # last increment record
        agg = render_events(load_events(tel.path))
        assert str(big + 1) in agg  # read-time sum: 2**63, exactly

    def test_labels_fold_into_name(self, tel):
        tel.count("remote.completed", 3, host="h1")
        tel.count("remote.completed", 2, host="h1")
        tel.count("remote.completed", 5, host="h2")
        out = render_events(load_events(tel.path))
        assert "remote.completed{host=h1}" in out
        assert "remote.completed{host=h2}" in out


class TestRenderer:
    def test_malformed_and_foreign_lines_skipped(self, tel):
        tel.count("kept", 1)
        with open(tel.path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "kind": "counter", "na')  # torn write
            fh.write("\n")
            fh.write(json.dumps({"v": 999, "kind": "counter", "name": "foreign"}))
            fh.write("\nnot json at all\n")
            fh.write(json.dumps({"v": 1, "kind": "counter"}))  # no name
            fh.write("\n")
        records = load_events(tel.path)
        names = [r["name"] for r in records if r["kind"] == "counter"]
        assert names == ["kept"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError):
            render_file(tmp_path / "absent.jsonl")

    def test_tree_and_sections(self, tel):
        with tel.span("runner.batch"):
            with tel.span("job.execute"):
                pass
        tel.count("sim.l1d.hits", 10)
        tel.event("runner.job_done", key="abc123")
        out = render_events(load_events(tel.path))
        assert "span tree" in out
        assert "runner.batch" in out and "    job.execute" in out
        assert "sim.l1d.hits" in out
        assert "runner.job_done x1" in out
        assert "key=abc123" in out

    def test_orphan_span_roots_itself(self, tel):
        # A span whose parent record never made it (process died with the
        # parent still open) must still appear in the tree.
        tel.emit("span", "orphan", id=77, parent=55, depth=1, start=0.0, dur=0.5)
        out = render_events(load_events(tel.path))
        assert "orphan" in out
