"""Telemetry-neutrality property: observing a run must not change it.

The contract (DESIGN.md section 10): with telemetry enabled, every
simulation produces ``RunStats`` **bit-identical** to the uninstrumented
run, across all six protocol families.  The instrumentation emits per
*run* - counters are snapshots of statistics the simulator already keeps -
so neutrality holds by construction; this suite pins it empirically so a
future per-record emission sneaking into a hot loop fails loudly.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import TELEMETRY
from repro.runner.backends.local import execute_job
from repro.runner.sweep import grid_from_args

FAMILIES = ("pct", "baseline", "victim", "dls", "neat", "phase")


def _jobs(families=FAMILIES):
    return grid_from_args(
        workloads=("tsp",),
        families=tuple(families),
        pcts=(4,),
        num_cores=16,
        scale="tiny",
        warmup=True,
        seed=0,
    ).jobs()


@pytest.mark.parametrize("family", FAMILIES)
def test_runstats_bit_identical_with_telemetry(family, tmp_path):
    (job,) = _jobs((family,))
    baseline = execute_job(job).to_dict()
    sink = tmp_path / "events.jsonl"
    TELEMETRY.enable(sink)
    try:
        observed = execute_job(job).to_dict()
    finally:
        TELEMETRY.disable()
    # Byte-level identity of the canonical serialization, not approximate
    # equality: telemetry may not perturb a single field.
    assert json.dumps(observed, sort_keys=True) == json.dumps(baseline, sort_keys=True)


def test_instrumented_run_emits_spans_and_counters(tmp_path):
    (job,) = _jobs(("pct",))
    sink = tmp_path / "events.jsonl"
    TELEMETRY.enable(sink)
    try:
        execute_job(job)
    finally:
        TELEMETRY.disable()
    records = [json.loads(line) for line in sink.read_text().splitlines() if line.strip()]
    spans = {r["name"] for r in records if r["kind"] == "span"}
    counters = {r["name"] for r in records if r["kind"] == "counter"}
    assert "sim.run" in spans
    assert {"sim.phase.warmup", "sim.phase.simulate"} <= spans
    assert {"sim.l1d.accesses", "sim.l1d.hits", "mesh.flits",
            "mesh.slot_recycles", "sim.fastpath.read_hits"} <= counters


def test_disabled_run_touches_no_sink(tmp_path):
    # The global singleton is disabled in the test environment; a plain run
    # must not create or write any telemetry artifact.
    assert not TELEMETRY.enabled
    (job,) = _jobs(("baseline",))
    execute_job(job)
    assert list(tmp_path.iterdir()) == []
